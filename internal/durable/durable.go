// Package durable puts a write-ahead log and checkpoint snapshots
// underneath a catalog.Catalog, so that a process crash loses nothing
// that was acknowledged.
//
// Every mutation — Ingest, Append, Delete, Maintain — is applied to
// the in-memory catalog, then encoded as one JSON record, appended to
// the WAL, and fsynced before the call returns. The sync point IS the
// acknowledgement: an operation whose call returned nil error survives
// any crash; an operation whose call returned an error may or may not
// have reached disk and the caller must treat it as not-done. A failed
// append or sync poisons the durable catalog (every later mutation
// fails fast) because the in-memory state may then be ahead of the
// durable prefix — the only safe continuation is a restart, which
// recovers exactly the acknowledged prefix.
//
// Recovery is load-latest-checkpoint + replay-WAL-tail. A checkpoint
// serializes every relation's tuple snapshot plus its maintained index
// specs plus the registered maintained statements into a single
// CRC-framed record, published atomically (write temp, sync, rename);
// the WAL is then truncated, so replay cost is bounded by the work
// since the last checkpoint, not the lifetime of the database. Replay
// tolerates a torn final record (truncated away, the tail was never
// acknowledged) and detects mid-log corruption by offset; by default it
// recovers the last consistent prefix, with StrictReplay it refuses to
// open. Recovery is idempotent: reopening the same directory any
// number of times yields the same catalog.
package durable

import (
	"encoding/json"
	"fmt"
	"sync"

	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
	"tetrisjoin/internal/wal"
)

// WALName is the write-ahead log file inside the data directory.
// Exported so the crash-recovery fuzz harness can truncate and corrupt
// it by name when simulating crashes.
const WALName = "wal.log"

// WALPrevName is the previous WAL epoch: each checkpoint rotates the
// live log here instead of truncating it, so a checkpoint manifest
// that later fails validation can fall back to the prior manifest plus
// both epochs and still recover the full acknowledged prefix.
const WALPrevName = "wal-prev.log"

// defaultCheckpointEvery bounds WAL replay cost: after this many logged
// records a background checkpoint folds the log into a snapshot.
const defaultCheckpointEvery = 256

// Options configures opening a durable catalog.
type Options struct {
	// FS is the storage to recover from and log to. Nil means a DirFS
	// over the Dir argument of Open.
	FS wal.FS
	// Catalog configures the wrapped in-memory catalog.
	Catalog catalog.Options
	// CheckpointEvery is the number of logged records after which a
	// background checkpoint is taken. 0 means the default (256);
	// negative disables automatic checkpoints (Checkpoint can still be
	// called explicitly).
	CheckpointEvery int
	// StrictReplay refuses to open when the WAL has a mid-log CRC
	// mismatch, instead of recovering the last consistent prefix.
	StrictReplay bool
	// DisableIndexSegments makes checkpoints serialize tuple slabs only,
	// leaving every index to be rebuilt at recovery. For benchmarks and
	// comparisons; the default (false) freezes indexes into segments so
	// a clean restart performs zero index builds.
	DisableIndexSegments bool
	// Logf, when non-nil, receives recovery and checkpoint diagnostics.
	Logf func(format string, args ...any)
}

// RecoveryInfo reports what Open found and did.
type RecoveryInfo struct {
	// CheckpointLSN is the LSN covered by the checkpoint that was
	// loaded; 0 when recovery started from an empty state.
	CheckpointLSN uint64
	// LastLSN is the last applied LSN after recovery.
	LastLSN uint64
	// Replayed is the number of WAL tail records applied on top of the
	// checkpoint.
	Replayed int
	// Relations and Maintained count what the recovered catalog holds.
	Relations  int
	Maintained int
	// TornTail is true when a torn final record was truncated away.
	TornTail bool
	// CorruptOffset is the byte offset of a mid-log CRC mismatch, or -1
	// when the log was clean. Non-negative only with StrictReplay off —
	// the log was truncated to the last consistent prefix.
	CorruptOffset int64
	// SegmentRelations counts relations materialized from segment files
	// (as opposed to replayed from WAL records).
	SegmentRelations int
	// IndexesLoaded counts indexes loaded zero-copy from frozen segment
	// sections; IndexesRebuilt counts manifest-listed index sections
	// that were missing or corrupt and had to be rebuilt from tuples.
	IndexesLoaded  int
	IndexesRebuilt int
	// CheckpointFallback is true when the newest manifest failed
	// validation and recovery used an older one (plus the previous WAL
	// epoch) instead.
	CheckpointFallback bool
}

// Catalog is a catalog.Catalog whose mutations are write-ahead logged.
// Read paths (Execute, Prepare, Relation, Stats, ...) are promoted from
// the embedded catalog unchanged; the mutation methods are shadowed
// with logging wrappers. Mutations are serialized by one mutex — the
// WAL is a single append stream — while reads stay concurrent.
type Catalog struct {
	*catalog.Catalog

	fsys wal.FS
	opts Options

	mu        sync.Mutex
	log       *wal.Log
	lastLSN   uint64 // last LSN applied to the catalog and logged
	ckptLSN   uint64 // LSN covered by the newest durable checkpoint
	sinceCkpt int    // records logged since that checkpoint
	broken    error  // sticky: set when an append/sync fails
	closed    bool
	maint     map[string]*maintEntry
	// segs tracks which segment file currently holds each relation and
	// at which version it was frozen — the churn detector that lets a
	// checkpoint skip re-serializing unchanged relations.
	segs map[string]segRef

	info        RecoveryInfo
	checkpoints int64

	ckptCh chan struct{} // kicks the background checkpoint worker
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// maintEntry pairs a live maintained statement with the durable record
// that recreates it on recovery.
type maintEntry struct {
	m   *catalog.Maintained
	rec maintRecord
}

// walOp is the JSON payload of one WAL record: exactly the arguments
// needed to re-apply the mutation against a recovering catalog. Mode is
// stored in its parseable form ("preloaded", not Mode.String()'s
// "tetris-preloaded"), and specs by family name, so records survive a
// round-trip through core.ParseMode and index.ParseFamily.
type walOp struct {
	Op     string             `json:"op"`
	Name   string             `json:"name,omitempty"`
	Rel    *relation.Snapshot `json:"rel,omitempty"`
	Specs  []specRecord       `json:"specs,omitempty"`
	Tuples [][]uint64         `json:"tuples,omitempty"`
	ID     string             `json:"id,omitempty"`
	Query  string             `json:"query,omitempty"`
	Mode   string             `json:"mode,omitempty"`
	SAO    []string           `json:"sao,omitempty"`
}

// specRecord is an index.Spec in durable form.
type specRecord struct {
	Family string   `json:"family"`
	Order  []string `json:"order,omitempty"`
}

// maintRecord is a maintained-statement registration in durable form.
type maintRecord struct {
	ID    string   `json:"id"`
	Query string   `json:"query"`
	Mode  string   `json:"mode,omitempty"`
	SAO   []string `json:"sao,omitempty"`
}

// Open recovers a durable catalog from dir (or opts.FS when set): load
// the newest valid checkpoint, replay the WAL tail on top, repair a
// torn tail, and resume logging where the last acknowledged record
// ended.
func Open(dir string, opts Options) (*Catalog, error) {
	fsys := opts.FS
	if fsys == nil {
		dfs, err := wal.NewDirFS(dir)
		if err != nil {
			return nil, err
		}
		fsys = dfs
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	ckpt, fellBack, err := loadNewestCheckpoint(fsys, opts.StrictReplay, logf)
	if err != nil {
		return nil, err
	}

	// Replay the previous WAL epoch only when it can matter: with no
	// manifest, or with a fallback manifest, the previous epoch holds
	// acknowledged records past the manifest actually loaded. A clean
	// newest manifest covers everything up to its own rotation point,
	// so wal-prev is skipped entirely.
	var prevRecords []wal.Record
	if ckpt == nil || ckpt.Fallback {
		prev, err := wal.Replay(fsys, WALPrevName)
		if err != nil {
			return nil, fmt.Errorf("durable: replay %s: %w", WALPrevName, err)
		}
		if prev.Corrupt != nil {
			if opts.StrictReplay {
				return nil, fmt.Errorf("durable: %w", prev.Corrupt)
			}
			logf("durable: %s: %v; recovering %d-byte prefix", WALPrevName, prev.Corrupt, prev.Size)
		}
		prevRecords = prev.Records
	}

	rep, err := wal.Replay(fsys, WALName)
	if err != nil {
		return nil, fmt.Errorf("durable: replay %s: %w", WALName, err)
	}
	if rep.Corrupt != nil {
		if opts.StrictReplay {
			return nil, fmt.Errorf("durable: %w", rep.Corrupt)
		}
		logf("durable: %v; recovering %d-byte prefix", rep.Corrupt, rep.Size)
	}

	d := &Catalog{
		Catalog: catalog.NewWithOptions(opts.Catalog),
		fsys:    fsys,
		opts:    opts,
		maint:   map[string]*maintEntry{},
		segs:    map[string]segRef{},
		info:    RecoveryInfo{CorruptOffset: -1},
	}
	if rep.Corrupt != nil {
		d.info.CorruptOffset = rep.Corrupt.Offset
	}
	d.info.TornTail = rep.TornTail

	// Rebuild the checkpointed state first: relations with their loaded
	// indexes registered and the remaining maintained specs ensured,
	// then the maintained statements — before the tail replays, so a
	// statement registered in the checkpoint sees the tail mutations as
	// ordinary deltas, exactly as it would have live. On a fully
	// segment-backed restart every spec arrives via Put, Ensure finds
	// them all present, and the catalog's build counter never moves.
	d.info.CheckpointFallback = fellBack
	if ckpt != nil {
		d.ckptLSN = ckpt.LSN
		d.lastLSN = ckpt.LSN
		d.info.CheckpointLSN = ckpt.LSN
		d.info.IndexesLoaded = ckpt.IndexesLoaded
		d.info.IndexesRebuilt = ckpt.IndexesRebuilt
		for _, lr := range ckpt.Relations {
			lr := lr
			_, err := d.Catalog.IngestPrepared(lr.rel, func(set *index.Set) error {
				for _, li := range lr.loaded {
					if err := set.Put(li.spec, li.ix); err != nil {
						return err
					}
				}
				return set.Ensure(append(append([]index.Spec{}, d.opts.Catalog.DefaultSpecs...), lr.specs...)...)
			})
			if err != nil {
				return nil, fmt.Errorf("durable: checkpoint relation %s: %w", lr.rel.Name(), err)
			}
			d.segs[lr.rel.Name()] = segRef{version: lr.rel.Version(), entry: lr.entry}
			d.info.SegmentRelations++
		}
		for _, mr := range ckpt.Maintained {
			if err := d.applyMaintain(mr); err != nil {
				return nil, fmt.Errorf("durable: checkpoint statement %q: %w", mr.ID, err)
			}
		}
	}

	// Replay the tail: previous epoch first (empty unless recovery fell
	// back), then the live log. Records at or below the loaded
	// manifest's LSN are already folded into its segments — they
	// reappear after a crash between manifest publish and rotation —
	// and are skipped, which is what makes repeated recovery
	// idempotent.
	for _, rec := range append(prevRecords, rep.Records...) {
		if rec.LSN <= d.ckptLSN {
			continue
		}
		var op walOp
		if err := json.Unmarshal(rec.Payload, &op); err != nil {
			return nil, fmt.Errorf("durable: record lsn=%d: %w", rec.LSN, err)
		}
		if err := d.applyOp(op); err != nil {
			return nil, fmt.Errorf("durable: record lsn=%d (%s): %w", rec.LSN, op.Op, err)
		}
		d.lastLSN = rec.LSN
		d.info.Replayed++
	}

	// Repair the live log to match what was applied: a torn or corrupt
	// tail is cut so appends resume on a consistent prefix.
	if rep.TornTail || rep.Corrupt != nil {
		if err := truncateIfExists(fsys, WALName, rep.Size); err != nil {
			return nil, fmt.Errorf("durable: repair %s: %w", WALName, err)
		}
	}

	lg, err := wal.OpenLog(fsys, WALName, rep.Size, d.lastLSN)
	if err != nil {
		return nil, fmt.Errorf("durable: open %s: %w", WALName, err)
	}
	d.log = lg
	d.sinceCkpt = d.info.Replayed
	d.info.LastLSN = d.lastLSN
	d.info.Relations = len(d.Catalog.Names())
	d.info.Maintained = len(d.maint)
	logf("durable: recovered %d relations, %d statements (checkpoint lsn=%d, %d replayed, %d indexes loaded, %d rebuilt, torn=%v)",
		d.info.Relations, d.info.Maintained, d.info.CheckpointLSN, d.info.Replayed, d.info.IndexesLoaded, d.info.IndexesRebuilt, d.info.TornTail)

	if every := d.checkpointEvery(); every > 0 {
		d.ckptCh = make(chan struct{}, 1)
		d.stopCh = make(chan struct{})
		d.wg.Add(1)
		go d.checkpointLoop()
	}
	return d, nil
}

// checkpointEvery resolves the configured auto-checkpoint interval:
// 0 → default, negative → disabled.
func (d *Catalog) checkpointEvery() int {
	switch {
	case d.opts.CheckpointEvery < 0:
		return 0
	case d.opts.CheckpointEvery == 0:
		return defaultCheckpointEvery
	default:
		return d.opts.CheckpointEvery
	}
}

// Recovery returns what Open found and did.
func (d *Catalog) Recovery() RecoveryInfo { return d.info }

// Err returns the sticky poisoning error, or nil while the durable
// catalog is healthy.
func (d *Catalog) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.broken
}

// usable gates every mutation.
func (d *Catalog) usable() error {
	if d.broken != nil {
		return fmt.Errorf("durable: log poisoned by earlier failure: %w", d.broken)
	}
	if d.closed {
		return fmt.Errorf("durable: catalog closed")
	}
	return nil
}

// logOp encodes and durably appends one mutation record; the fsync
// before return is the acknowledgement point. Any failure poisons the
// catalog: the in-memory state may now be ahead of the durable prefix,
// and only a restart reconciles them.
func (d *Catalog) logOp(op walOp) error {
	payload, err := json.Marshal(op)
	if err != nil {
		d.broken = err
		return fmt.Errorf("durable: encode %s: %w", op.Op, err)
	}
	if _, _, err := d.log.Append(payload); err != nil {
		d.broken = err
		return fmt.Errorf("durable: append %s: %w", op.Op, err)
	}
	if err := d.log.Sync(); err != nil {
		d.broken = err
		return fmt.Errorf("durable: sync %s: %w", op.Op, err)
	}
	d.lastLSN = d.log.LastLSN()
	d.sinceCkpt++
	if every := d.checkpointEvery(); every > 0 && d.sinceCkpt >= every {
		select {
		case d.ckptCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// Ingest registers a relation and logs it durably.
func (d *Catalog) Ingest(rel *relation.Relation, specs ...index.Spec) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usable(); err != nil {
		return 0, err
	}
	v, err := d.Catalog.Ingest(rel, specs...)
	if err != nil {
		return 0, err
	}
	snap := rel.Snapshot()
	if err := d.logOp(walOp{Op: "ingest", Rel: &snap, Specs: specsToRecords(specs)}); err != nil {
		return 0, err
	}
	return v, nil
}

// Append inserts tuples into a relation and logs the delta durably.
func (d *Catalog) Append(name string, tuples ...relation.Tuple) (uint64, error) {
	return d.mutate("append", name, tuples)
}

// Delete removes tuples from a relation and logs the delta durably.
func (d *Catalog) Delete(name string, tuples ...relation.Tuple) (uint64, error) {
	return d.mutate("delete", name, tuples)
}

func (d *Catalog) mutate(op, name string, tuples []relation.Tuple) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usable(); err != nil {
		return 0, err
	}
	var (
		v   uint64
		err error
	)
	if op == "append" {
		v, err = d.Catalog.Append(name, tuples...)
	} else {
		v, err = d.Catalog.Delete(name, tuples...)
	}
	if err != nil {
		return 0, err
	}
	if err := d.logOp(walOp{Op: op, Name: name, Tuples: tuplesToRaw(tuples)}); err != nil {
		return 0, err
	}
	return v, nil
}

// Maintain registers a maintained statement under a caller-chosen id
// and logs the registration durably, so recovery re-materializes it.
// Only Mode and SAOVars of opts are durable state; the rest is
// per-execution tuning that callers pass to Execute.
func (d *Catalog) Maintain(id, query string, opts join.Options) (*catalog.Maintained, error) {
	if id == "" {
		return nil, fmt.Errorf("durable: maintained statement needs a non-empty id")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usable(); err != nil {
		return nil, err
	}
	if _, ok := d.maint[id]; ok {
		return nil, fmt.Errorf("durable: maintained statement %q already exists", id)
	}
	m, err := d.Catalog.Maintain(query, opts)
	if err != nil {
		return nil, err
	}
	rec := maintRecord{ID: id, Query: query, Mode: modeString(opts.Mode), SAO: opts.SAOVars}
	if err := d.logOp(walOp{Op: "maintain", ID: rec.ID, Query: rec.Query, Mode: rec.Mode, SAO: rec.SAO}); err != nil {
		return nil, err
	}
	d.maint[id] = &maintEntry{m: m, rec: rec}
	return m, nil
}

// MaintainedByID returns the live maintained statement registered under
// the id, if any.
func (d *Catalog) MaintainedByID(id string) (*catalog.Maintained, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.maint[id]
	if !ok {
		return nil, false
	}
	return e.m, true
}

// MaintainedIDs returns the registered statement ids, unordered.
func (d *Catalog) MaintainedIDs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]string, 0, len(d.maint))
	for id := range d.maint {
		ids = append(ids, id)
	}
	return ids
}

// applyOp re-applies one WAL record during recovery. These records were
// produced after a successful catalog apply, so failure here means the
// log and the code disagree — a hard error, not something to skip.
func (d *Catalog) applyOp(op walOp) error {
	switch op.Op {
	case "ingest":
		if op.Rel == nil {
			return fmt.Errorf("ingest record without relation")
		}
		rel, err := relation.FromSnapshot(*op.Rel)
		if err != nil {
			return err
		}
		specs, err := specsFromRecords(op.Specs)
		if err != nil {
			return err
		}
		_, err = d.Catalog.Ingest(rel, specs...)
		return err
	case "append":
		_, err := d.Catalog.Append(op.Name, rawToTuples(op.Tuples)...)
		return err
	case "delete":
		_, err := d.Catalog.Delete(op.Name, rawToTuples(op.Tuples)...)
		return err
	case "maintain":
		return d.applyMaintain(maintRecord{ID: op.ID, Query: op.Query, Mode: op.Mode, SAO: op.SAO})
	default:
		return fmt.Errorf("unknown op %q", op.Op)
	}
}

// applyMaintain re-materializes a maintained statement from its durable
// record, at whatever catalog state recovery has reached — mid-tail
// registrations then see the remaining tail as live deltas.
func (d *Catalog) applyMaintain(rec maintRecord) error {
	mode, err := core.ParseMode(rec.Mode)
	if err != nil {
		return err
	}
	m, err := d.Catalog.Maintain(rec.Query, join.Options{Mode: mode, SAOVars: rec.SAO})
	if err != nil {
		return err
	}
	d.maint[rec.ID] = &maintEntry{m: m, rec: rec}
	return nil
}

// WALStats reports the durable layer's position.
type WALStats struct {
	LastLSN         uint64
	CheckpointLSN   uint64
	SinceCheckpoint int
	WALSize         int64
	Checkpoints     int64
	Broken          bool
}

// WAL returns the current durable-layer counters.
func (d *Catalog) WAL() WALStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return WALStats{
		LastLSN:         d.lastLSN,
		CheckpointLSN:   d.ckptLSN,
		SinceCheckpoint: d.sinceCkpt,
		WALSize:         d.log.Size(),
		Checkpoints:     d.checkpoints,
		Broken:          d.broken != nil,
	}
}

// checkpointLoop runs auto-checkpoints off the mutation path. The
// worker holds the mutation mutex while snapshotting, so writers stall
// during a fold but never pay its cost inside their own ack latency
// accounting; kicks are coalesced through the 1-buffered channel.
func (d *Catalog) checkpointLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stopCh:
			return
		case <-d.ckptCh:
			if err := d.Checkpoint(); err != nil && d.opts.Logf != nil {
				d.opts.Logf("durable: auto checkpoint: %v", err)
			}
		}
	}
}

// Close stops the checkpoint worker, waits for in-flight index
// compactions, and closes the log. The state on disk remains exactly
// the acknowledged prefix.
func (d *Catalog) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	stop := d.stopCh
	d.mu.Unlock()
	if stop != nil {
		close(stop)
		d.wg.Wait()
	}
	d.Catalog.WaitCompactions()
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Close()
}

// truncateIfExists truncates the named file, treating a missing file
// as already truncated.
func truncateIfExists(fsys wal.FS, name string, size int64) error {
	if _, err := fsys.ReadFile(name); err != nil {
		return nil
	}
	return fsys.Truncate(name, size)
}

// modeString is core.ParseMode's inverse: the durable spelling of a
// mode. Mode.String() is deliberately NOT used — its "tetris-" prefixed
// names do not parse back.
func modeString(m core.Mode) string {
	switch m {
	case core.Preloaded:
		return "preloaded"
	case core.ReloadedLB:
		return "reloaded-lb"
	case core.PreloadedLB:
		return "preloaded-lb"
	default:
		return "reloaded"
	}
}

func specToRecord(s index.Spec) specRecord {
	return specRecord{Family: s.Family.String(), Order: append([]string(nil), s.Order...)}
}

func specFromRecord(r specRecord) (index.Spec, error) {
	fam, err := index.ParseFamily(r.Family)
	if err != nil {
		return index.Spec{}, err
	}
	return index.Spec{Family: fam, Order: append([]string(nil), r.Order...)}, nil
}

func specsToRecords(specs []index.Spec) []specRecord {
	if len(specs) == 0 {
		return nil
	}
	out := make([]specRecord, len(specs))
	for i, s := range specs {
		out[i] = specToRecord(s)
	}
	return out
}

func specsFromRecords(recs []specRecord) ([]index.Spec, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	out := make([]index.Spec, len(recs))
	for i, r := range recs {
		s, err := specFromRecord(r)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

func tuplesToRaw(tuples []relation.Tuple) [][]uint64 {
	out := make([][]uint64, len(tuples))
	for i, t := range tuples {
		out[i] = append([]uint64(nil), t...)
	}
	return out
}

func rawToTuples(raw [][]uint64) []relation.Tuple {
	out := make([]relation.Tuple, len(raw))
	for i, t := range raw {
		out[i] = relation.Tuple(t)
	}
	return out
}
