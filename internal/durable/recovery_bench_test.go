package durable

import (
	"fmt"
	"testing"

	"tetrisjoin/internal/relation"
	"tetrisjoin/internal/wal"
)

// BenchmarkRecovery measures durable.Open over a log of n acknowledged
// single-tuple appends, with and without a checkpoint folding them into
// a snapshot first. The wal series scales with the record count (replay
// re-applies every append); the ckpt series loads one snapshot and
// replays an empty tail, so it scales only with the data size. The
// EXPERIMENTS.md recovery-time table comes from this benchmark.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		for _, ckpt := range []bool{false, true} {
			mode := "wal"
			if ckpt {
				mode = "ckpt"
			}
			b.Run(fmt.Sprintf("%s-%d", mode, n), func(b *testing.B) {
				fs := wal.NewMemFS()
				d, err := Open("", Options{FS: fs, CheckpointEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				rel, err := relation.New("R", []string{"x", "y"}, []uint8{24, 24})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := d.Ingest(rel); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < n; i++ {
					if _, err := d.Append("R", relation.Tuple{uint64(i), uint64(i)}); err != nil {
						b.Fatal(err)
					}
				}
				if ckpt {
					if err := d.Checkpoint(); err != nil {
						b.Fatal(err)
					}
				}
				if err := d.Close(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d2, err := Open("", Options{FS: fs.Clone(), CheckpointEvery: -1})
					if err != nil {
						b.Fatal(err)
					}
					if got, ok := d2.Relation("R"); !ok || got.Len() != n {
						b.Fatalf("recovered %v tuples, want %d", got, n)
					}
					d2.Close()
				}
			})
		}
	}
}
