// Incremental checkpoints over mmap-able segments.
//
// A checkpoint is a manifest (one CRC-framed record per file, named
// checkpoint-<lsn>.ckpt like before) plus one segment file per
// relation. The segment holds the relation's tuple slab and the frozen
// form of every maintained index (internal/segment container); the
// manifest records, per relation, which file holds it and which
// section is which. Only relations whose Version() moved since the
// previous checkpoint are re-frozen — unchanged relations re-reference
// their existing segment file — so checkpoint cost is proportional to
// churn, not to catalog size. Publishes stay atomic (stage, sync,
// rename); segment garbage collection runs strictly after manifest
// retention and never removes a file any retained manifest still
// references.
package durable

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tetrisjoin/internal/index"
	"tetrisjoin/internal/relation"
	"tetrisjoin/internal/segment"
	"tetrisjoin/internal/wal"
)

// ckptTmpName is the scratch file a manifest is staged in before the
// atomic rename; a leftover one (crash mid-write) is removed at open.
const ckptTmpName = "checkpoint.tmp"

// segTmpName is the scratch file a segment is staged in. One at a
// time: segments are written sequentially under the mutation mutex.
const segTmpName = "segment.tmp"

// keepCheckpoints is how many published checkpoints are retained; the
// older ones are insurance against a latest-checkpoint file that fails
// validation at recovery. Every segment file a retained manifest
// references is retained with it.
const keepCheckpoints = 2

// Segment section kinds.
const (
	segKindTuples = 1
	segKindIndex  = 2
)

// checkpoint is one manifest: the catalog state as of LSN, described
// by reference into segment files.
type checkpoint struct {
	LSN        uint64         `json:"-"`
	Relations  []ckptRelation `json:"relations"`
	Maintained []maintRecord  `json:"maintained,omitempty"`
}

// ckptRelation locates one relation inside a segment file: its schema,
// the tuple-slab section, the maintained spec list (always complete —
// recovery must rebuild these even when no index section loads), and
// the frozen index sections actually present.
type ckptRelation struct {
	Name          string       `json:"name"`
	Attrs         []string     `json:"attrs"`
	Depths        []uint8      `json:"depths"`
	File          string       `json:"file"`
	TuplesSection int          `json:"tuples_section"`
	Specs         []specRecord `json:"specs,omitempty"`
	Indexes       []ckptIndex  `json:"indexes,omitempty"`
}

// ckptIndex names one frozen index section.
type ckptIndex struct {
	Spec    specRecord `json:"spec"`
	Section int        `json:"section"`
}

// segRef is the in-memory churn tracker: which segment file currently
// holds a relation, frozen at which version. Seeded from the loaded
// manifest at recovery so unchanged relations keep reusing their
// segment files across restarts.
type segRef struct {
	version uint64
	entry   ckptRelation
}

// ckptName formats the published manifest name; the LSN rides in the
// name so recovery can order candidates without opening them.
func ckptName(lsn uint64) string {
	return fmt.Sprintf("checkpoint-%016x.ckpt", lsn)
}

// parseCkptName extracts the LSN from a manifest file name.
func parseCkptName(name string) (uint64, bool) {
	s, ok := strings.CutPrefix(name, "checkpoint-")
	if !ok {
		return 0, false
	}
	s, ok = strings.CutSuffix(s, ".ckpt")
	if !ok {
		return 0, false
	}
	lsn, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// segName formats a segment file name: the checkpoint LSN that wrote
// it plus a per-checkpoint sequence number.
func segName(lsn uint64, seq int) string {
	return fmt.Sprintf("seg-%016x-%d.seg", lsn, seq)
}

// isSegName reports whether a directory entry is a published segment.
func isSegName(name string) bool {
	return strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg")
}

// Checkpoint folds the current catalog state into a manifest plus
// segment files and rotates the WAL. Mutations are blocked for the
// duration; the automatic path runs this from a background worker so
// the fold never rides inside a caller's acknowledgement. Only
// relations that changed since the previous checkpoint are serialized;
// the rest are referenced from their existing segments. No-op when
// nothing was logged since the last checkpoint.
func (d *Catalog) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usable(); err != nil {
		return err
	}
	if d.sinceCkpt == 0 || d.lastLSN == 0 {
		return nil
	}

	ck := checkpoint{LSN: d.lastLSN}
	names := d.Catalog.Names()
	sort.Strings(names)
	live := map[string]bool{}
	seq := 0
	for _, name := range names {
		rel, ok := d.Catalog.Relation(name)
		if !ok {
			continue
		}
		live[name] = true
		if ref, ok := d.segs[name]; ok && ref.version == rel.Version() {
			ck.Relations = append(ck.Relations, ref.entry)
			continue
		}
		entry, err := d.freezeRelation(name, rel, ck.LSN, seq)
		if err != nil {
			return err
		}
		seq++
		d.segs[name] = segRef{version: rel.Version(), entry: entry}
		ck.Relations = append(ck.Relations, entry)
	}
	for name := range d.segs {
		if !live[name] {
			delete(d.segs, name)
		}
	}
	ids := make([]string, 0, len(d.maint))
	for id := range d.maint {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ck.Maintained = append(ck.Maintained, d.maint[id].rec)
	}

	payload, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("durable: encode checkpoint: %w", err)
	}
	if err := d.stageAndPublish(ckptTmpName, ckptName(ck.LSN), wal.EncodeRecord(ck.LSN, payload)); err != nil {
		return err
	}

	d.ckptLSN = ck.LSN
	d.sinceCkpt = 0
	d.checkpoints++

	// The WAL records below the manifest's LSN are now redundant: rotate
	// the log so the previous epoch stays available as the fallback for
	// a manifest that later fails validation (wal-prev plus wal covers
	// everything past the previous checkpoint). A rotation failure
	// poisons the catalog — the log handle's state is unknown.
	if err := d.rotateWAL(); err != nil {
		d.broken = err
		return fmt.Errorf("durable: rotate wal after checkpoint: %w", err)
	}
	d.pruneCheckpoints()
	return nil
}

// freezeRelation serializes one relation — tuple slab plus every
// maintained index in its frozen flat form — into a fresh segment
// file, returning the manifest entry that locates it. Delta-layered
// indexes have no flat form; they are folded by building a fresh flat
// index at the current snapshot (the fold a checkpoint performs
// anyway), without charging the catalog's build counter.
func (d *Catalog) freezeRelation(name string, rel *relation.Relation, lsn uint64, seq int) (ckptRelation, error) {
	var w segment.Writer
	entry := ckptRelation{
		Name:   name,
		Attrs:  rel.Attrs(),
		Depths: rel.Depths(),
		File:   segName(lsn, seq),
	}
	entry.TuplesSection = w.AddSection(segKindTuples, rel.AppendWords(nil))

	specs := d.Catalog.Specs(name)
	sort.Slice(specs, func(i, j int) bool { return specs[i].Key() < specs[j].Key() })
	entry.Specs = specsToRecords(specs)
	if !d.opts.DisableIndexSegments {
		if set := d.Catalog.IndexSet(name); set != nil {
			for _, spec := range specs {
				ix, _, err := set.Get(spec)
				if err != nil {
					return entry, fmt.Errorf("durable: freeze %s %s: %w", name, spec.Key(), err)
				}
				words, ok := index.FreezeIndex(ix)
				if !ok {
					flat, err := spec.Build(rel)
					if err != nil {
						return entry, fmt.Errorf("durable: fold %s %s: %w", name, spec.Key(), err)
					}
					if words, ok = index.FreezeIndex(flat); !ok {
						continue // unfreezable family: recovery rebuilds it
					}
				}
				sec := w.AddSection(segKindIndex, words)
				entry.Indexes = append(entry.Indexes, ckptIndex{Spec: specToRecord(spec), Section: sec})
			}
		}
	}
	if err := d.stageAndPublish(segTmpName, entry.File, w.Encode()); err != nil {
		return entry, err
	}
	return entry, nil
}

// stageAndPublish writes data to a scratch file, syncs it, and renames
// it into place — the file named final either exists complete or not
// at all.
func (d *Catalog) stageAndPublish(tmp, final string, data []byte) error {
	_ = d.fsys.Remove(tmp)
	f, err := d.fsys.OpenAppend(tmp)
	if err != nil {
		return fmt.Errorf("durable: stage %s: %w", final, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("durable: stage %s: %w", final, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: sync %s: %w", final, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: close %s: %w", final, err)
	}
	if err := d.fsys.Rename(tmp, final); err != nil {
		return fmt.Errorf("durable: publish %s: %w", final, err)
	}
	return nil
}

// rotateWAL closes the live log, renames it to the previous-epoch
// name, and starts a fresh one. The LSN counter continues — recovery
// filters on LSN, never on which file a record sits in.
func (d *Catalog) rotateWAL() error {
	if err := d.log.Close(); err != nil {
		return err
	}
	if err := d.fsys.Rename(WALName, WALPrevName); err != nil {
		return err
	}
	lg, err := wal.OpenLog(d.fsys, WALName, 0, d.lastLSN)
	if err != nil {
		return err
	}
	d.log = lg
	return nil
}

// pruneCheckpoints removes manifests beyond the newest keepCheckpoints
// and then garbage-collects segment files no retained manifest
// references. Removal order matters: manifests go first, so a crash
// anywhere in here leaves at worst unreferenced segment files (cleaned
// next time), never a retained manifest pointing at a deleted segment.
// If any retained manifest cannot be re-read, GC is skipped outright —
// better stale files than deleting a segment we failed to account for.
func (d *Catalog) pruneCheckpoints() {
	names, err := d.fsys.List()
	if err != nil {
		return
	}
	var lsns []uint64
	for _, name := range names {
		if lsn, ok := parseCkptName(name); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	retained := lsns
	if len(lsns) > keepCheckpoints {
		retained = lsns[:keepCheckpoints]
		for _, lsn := range lsns[keepCheckpoints:] {
			_ = d.fsys.Remove(ckptName(lsn))
		}
	}

	referenced := map[string]bool{}
	for _, lsn := range retained {
		man, err := readManifest(d.fsys, lsn)
		if err != nil {
			return // conservative: cannot prove a segment unreferenced
		}
		for _, cr := range man.Relations {
			referenced[cr.File] = true
		}
	}
	for _, name := range names {
		if isSegName(name) && !referenced[name] {
			_ = d.fsys.Remove(name)
		}
	}
}

// readManifest reads and parses one published manifest: exactly one
// CRC-clean record whose LSN matches the file name.
func readManifest(fsys wal.FS, lsn uint64) (*checkpoint, error) {
	name := ckptName(lsn)
	rep, err := wal.Replay(fsys, name)
	if err != nil {
		return nil, fmt.Errorf("durable: read checkpoint %s: %w", name, err)
	}
	if rep.Corrupt != nil || rep.TornTail || len(rep.Records) != 1 || rep.Records[0].LSN != lsn {
		return nil, fmt.Errorf("durable: checkpoint %s damaged (records=%d torn=%v corrupt=%v)",
			name, len(rep.Records), rep.TornTail, rep.Corrupt)
	}
	var ck checkpoint
	if err := json.Unmarshal(rep.Records[0].Payload, &ck); err != nil {
		return nil, fmt.Errorf("durable: checkpoint %s: %w", name, err)
	}
	ck.LSN = lsn
	return &ck, nil
}

// loadedCheckpoint is the result of validating and materializing the
// newest usable checkpoint at recovery.
type loadedCheckpoint struct {
	LSN        uint64
	Relations  []loadedRelation
	Maintained []maintRecord
	// Fallback is true when the newest manifest candidate failed
	// validation and an older one was used — recovery must then replay
	// the previous WAL epoch too, because the newest rotation point is
	// not covered by the manifest actually loaded.
	Fallback bool
	// IndexesLoaded/IndexesRebuilt count frozen index sections that
	// loaded zero-copy vs. ones recovery had to rebuild.
	IndexesLoaded  int
	IndexesRebuilt int
}

// loadedRelation is one relation materialized from its segment: the
// relation itself, the maintained specs to ensure, the subset of
// indexes that loaded from their frozen sections, and the manifest
// entry (for seeding the churn tracker).
type loadedRelation struct {
	rel    *relation.Relation
	specs  []index.Spec
	loaded []loadedIndex
	entry  ckptRelation
}

type loadedIndex struct {
	spec index.Spec
	ix   index.Index
}

// loadNewestCheckpoint scans for published manifests, newest first,
// and returns the first whose every relation materializes from its
// segment file. A manifest whose tuple data is unreachable (missing or
// corrupt segment, bad slab) is an invalid candidate: strict mode
// refuses, lenient mode falls back to the next older manifest (or
// empty state) and says loudly what it skipped. A frozen index section
// that fails to load does NOT invalidate the candidate — the index is
// rebuilt from the (validated) tuples instead, counted in
// IndexesRebuilt. Leftover staging files are removed.
func loadNewestCheckpoint(fsys wal.FS, strict bool, logf func(string, ...any)) (*loadedCheckpoint, bool, error) {
	names, err := fsys.List()
	if err != nil {
		return nil, false, fmt.Errorf("durable: list checkpoints: %w", err)
	}
	var lsns []uint64
	for _, name := range names {
		if name == ckptTmpName || name == segTmpName {
			_ = fsys.Remove(name)
			continue
		}
		if lsn, ok := parseCkptName(name); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })

	fallback := false
	for _, lsn := range lsns {
		lc, reason := materializeCheckpoint(fsys, lsn)
		if reason != "" {
			if strict {
				return nil, false, fmt.Errorf("durable: checkpoint %s invalid (%s)", ckptName(lsn), reason)
			}
			logf("durable: checkpoint %s invalid (%s); falling back", ckptName(lsn), reason)
			fallback = true
			continue
		}
		lc.Fallback = fallback
		return lc, fallback, nil
	}
	// fallback true here means every manifest failed: recovery proceeds
	// from empty state plus both WAL epochs, and the caller must still
	// surface the fallback in RecoveryInfo.
	return nil, fallback, nil
}

// materializeCheckpoint loads one manifest candidate and every
// relation it references. Returns a non-empty reason string when the
// candidate is unusable.
func materializeCheckpoint(fsys wal.FS, lsn uint64) (*loadedCheckpoint, string) {
	ck, err := readManifest(fsys, lsn)
	if err != nil {
		return nil, err.Error()
	}
	lc := &loadedCheckpoint{LSN: lsn, Maintained: ck.Maintained}
	for _, cr := range ck.Relations {
		lr, err := materializeRelation(fsys, cr, lc)
		if err != nil {
			return nil, fmt.Sprintf("relation %s: %v", cr.Name, err)
		}
		lc.Relations = append(lc.Relations, lr)
	}
	return lc, ""
}

// materializeRelation loads one relation (and whatever frozen indexes
// load cleanly) from its segment file. Tuple-slab failures are errors;
// index-section failures only mean that index gets rebuilt.
func materializeRelation(fsys wal.FS, cr ckptRelation, lc *loadedCheckpoint) (loadedRelation, error) {
	lr := loadedRelation{entry: cr}
	data, err := fsys.ReadFile(cr.File)
	if err != nil {
		return lr, err
	}
	seg, err := segment.Load(data)
	if err != nil {
		return lr, err
	}
	if cr.TuplesSection < 0 || cr.TuplesSection >= seg.Sections() || seg.Kind(cr.TuplesSection) != segKindTuples {
		return lr, fmt.Errorf("tuple section %d missing", cr.TuplesSection)
	}
	if err := seg.Verify(cr.TuplesSection); err != nil {
		return lr, err
	}
	rel, err := relation.FromWords(cr.Name, cr.Attrs, cr.Depths, seg.Words(cr.TuplesSection))
	if err != nil {
		return lr, err
	}
	lr.rel = rel
	lr.specs, err = specsFromRecords(cr.Specs)
	if err != nil {
		return lr, err
	}
	for _, ci := range cr.Indexes {
		spec, err := specFromRecord(ci.Spec)
		if err != nil {
			return lr, err
		}
		if ci.Section < 0 || ci.Section >= seg.Sections() || seg.Kind(ci.Section) != segKindIndex || seg.Verify(ci.Section) != nil {
			lc.IndexesRebuilt++
			continue
		}
		ix, err := index.LoadIndex(rel, spec, seg.Words(ci.Section))
		if err != nil {
			lc.IndexesRebuilt++
			continue
		}
		lr.loaded = append(lr.loaded, loadedIndex{spec: spec, ix: ix})
		lc.IndexesLoaded++
	}
	return lr, nil
}
