// Checkpoint snapshots: one CRC-framed record per file holding the
// full catalog state, published atomically so a crash at any point
// leaves either the old checkpoint set or the new one — never a
// half-written file that recovery would trust.
package durable

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tetrisjoin/internal/relation"
	"tetrisjoin/internal/wal"
)

// ckptTmpName is the scratch file a checkpoint is staged in before the
// atomic rename; a leftover one (crash mid-write) is removed at open.
const ckptTmpName = "checkpoint.tmp"

// keepCheckpoints is how many published checkpoints are retained; the
// older ones are insurance against a latest-checkpoint file that fails
// validation at recovery.
const keepCheckpoints = 2

// checkpoint is one loaded snapshot: the catalog state as of LSN.
type checkpoint struct {
	LSN        uint64         `json:"-"`
	Relations  []ckptRelation `json:"relations"`
	Maintained []maintRecord  `json:"maintained,omitempty"`
}

// ckptRelation is a relation's tuple snapshot plus the index specs its
// registry maintained, so recovery rebuilds the same physical design.
type ckptRelation struct {
	Snapshot relation.Snapshot `json:"snapshot"`
	Specs    []specRecord      `json:"specs,omitempty"`
}

// ckptName formats the published file name; the LSN rides in the name
// so recovery can order candidates without opening them.
func ckptName(lsn uint64) string {
	return fmt.Sprintf("checkpoint-%016x.ckpt", lsn)
}

// parseCkptName extracts the LSN from a checkpoint file name.
func parseCkptName(name string) (uint64, bool) {
	s, ok := strings.CutPrefix(name, "checkpoint-")
	if !ok {
		return 0, false
	}
	s, ok = strings.CutSuffix(s, ".ckpt")
	if !ok {
		return 0, false
	}
	lsn, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// Checkpoint folds the current catalog state into a new snapshot file
// and truncates the WAL. Mutations are blocked for the duration; the
// automatic path runs this from a background worker so the fold never
// rides inside a caller's acknowledgement. No-op when nothing was
// logged since the last checkpoint.
func (d *Catalog) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.usable(); err != nil {
		return err
	}
	if d.sinceCkpt == 0 || d.lastLSN == 0 {
		return nil
	}

	ck := checkpoint{LSN: d.lastLSN}
	for _, name := range d.Catalog.Names() {
		rel, ok := d.Catalog.Relation(name)
		if !ok {
			continue
		}
		ck.Relations = append(ck.Relations, ckptRelation{
			Snapshot: rel.Snapshot(),
			Specs:    specsToRecords(d.Catalog.Specs(name)),
		})
	}
	ids := make([]string, 0, len(d.maint))
	for id := range d.maint {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ck.Maintained = append(ck.Maintained, d.maint[id].rec)
	}

	payload, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("durable: encode checkpoint: %w", err)
	}
	frame := wal.EncodeRecord(ck.LSN, payload)

	// Stage, sync, rename: the file named checkpoint-<lsn>.ckpt either
	// exists complete or not at all.
	_ = d.fsys.Remove(ckptTmpName)
	f, err := d.fsys.OpenAppend(ckptTmpName)
	if err != nil {
		return fmt.Errorf("durable: stage checkpoint: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("durable: stage checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: close checkpoint: %w", err)
	}
	if err := d.fsys.Rename(ckptTmpName, ckptName(ck.LSN)); err != nil {
		return fmt.Errorf("durable: publish checkpoint: %w", err)
	}

	d.ckptLSN = ck.LSN
	d.sinceCkpt = 0
	d.checkpoints++

	// The WAL tail is now redundant. A Reset failure poisons the log
	// (stale records linger, but replay skips LSNs <= the checkpoint, so
	// correctness never depends on this truncation).
	if err := d.log.Reset(); err != nil {
		d.broken = err
		return fmt.Errorf("durable: truncate wal after checkpoint: %w", err)
	}
	d.pruneCheckpoints()
	return nil
}

// pruneCheckpoints removes published checkpoints beyond the newest
// keepCheckpoints. Best-effort: a failed remove costs disk, not
// correctness.
func (d *Catalog) pruneCheckpoints() {
	names, err := d.fsys.List()
	if err != nil {
		return
	}
	var lsns []uint64
	for _, name := range names {
		if lsn, ok := parseCkptName(name); ok {
			lsns = append(lsns, lsn)
		}
	}
	if len(lsns) <= keepCheckpoints {
		return
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	for _, lsn := range lsns[keepCheckpoints:] {
		_ = d.fsys.Remove(ckptName(lsn))
	}
}

// loadNewestCheckpoint scans the directory for published checkpoints,
// newest first, and returns the first one that validates: exactly one
// CRC-clean record whose LSN matches the file name. Publishes are
// atomic, so an invalid file means media corruption after the fact —
// and since the WAL was truncated when that checkpoint was taken, an
// older checkpoint cannot recover the operations in between. Strict
// mode therefore refuses; lenient mode falls back to the best remaining
// recovery point (older checkpoint, or empty state plus whatever the
// WAL holds) and says loudly what it skipped. A leftover staging file
// is removed.
func loadNewestCheckpoint(fsys wal.FS, strict bool, logf func(string, ...any)) (*checkpoint, error) {
	names, err := fsys.List()
	if err != nil {
		return nil, fmt.Errorf("durable: list checkpoints: %w", err)
	}
	var lsns []uint64
	for _, name := range names {
		if name == ckptTmpName {
			_ = fsys.Remove(name)
			continue
		}
		if lsn, ok := parseCkptName(name); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })

	for _, lsn := range lsns {
		name := ckptName(lsn)
		rep, err := wal.Replay(fsys, name)
		if err != nil {
			return nil, fmt.Errorf("durable: read checkpoint %s: %w", name, err)
		}
		reason := ""
		var ck checkpoint
		switch {
		case rep.Corrupt != nil || rep.TornTail || len(rep.Records) != 1 || rep.Records[0].LSN != lsn:
			reason = fmt.Sprintf("records=%d torn=%v corrupt=%v", len(rep.Records), rep.TornTail, rep.Corrupt)
		default:
			if err := json.Unmarshal(rep.Records[0].Payload, &ck); err != nil {
				reason = err.Error()
			}
		}
		if reason != "" {
			if strict {
				return nil, fmt.Errorf("durable: checkpoint %s invalid (%s)", name, reason)
			}
			logf("durable: checkpoint %s invalid (%s); falling back", name, reason)
			continue
		}
		ck.LSN = lsn
		return &ck, nil
	}
	return nil, nil
}
