// Package lp provides a small dense linear-programming solver (two-phase
// primal simplex with Bland's rule), sufficient for the fractional edge
// cover programs behind the AGM bound (paper Appendix A.1). Problems have
// at most a few dozen variables and constraints, so numerical
// sophistication is traded for simplicity and determinism.
package lp

import (
	"fmt"
	"math"
)

// Problem is the linear program
//
//	minimize    c·x
//	subject to  A x ≥ b,   x ≥ 0.
type Problem struct {
	C []float64   // objective coefficients, length nv
	A [][]float64 // constraint matrix, nc × nv
	B []float64   // right-hand sides, length nc
}

// Solution is an optimal solution of a Problem.
type Solution struct {
	X     []float64
	Value float64
}

const eps = 1e-9

// Solve returns an optimal solution, or an error if the problem is
// infeasible, unbounded, or malformed.
func Solve(p Problem) (*Solution, error) {
	nv := len(p.C)
	nc := len(p.A)
	if nv == 0 {
		return nil, fmt.Errorf("lp: no variables")
	}
	if len(p.B) != nc {
		return nil, fmt.Errorf("lp: %d constraints but %d right-hand sides", nc, len(p.B))
	}
	for i, row := range p.A {
		if len(row) != nv {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(row), nv)
		}
	}

	// Standard form: A x - s = b with slack (surplus) variables s ≥ 0,
	// plus artificial variables to get an initial basis. Rows are
	// normalized so b ≥ 0.
	//
	// Tableau columns: [x (nv) | s (nc) | a (nc) | rhs].
	total := nv + 2*nc
	tab := make([][]float64, nc+1)
	for i := range tab {
		tab[i] = make([]float64, total+1)
	}
	basis := make([]int, nc)
	for i := 0; i < nc; i++ {
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1.0
		}
		for j := 0; j < nv; j++ {
			tab[i][j] = sign * p.A[i][j]
		}
		tab[i][nv+i] = -sign // surplus
		tab[i][nv+nc+i] = 1  // artificial
		tab[i][total] = sign * p.B[i]
		basis[i] = nv + nc + i
	}

	// Phase 1: minimize the sum of artificials.
	obj := tab[nc]
	for j := nv + nc; j < total; j++ {
		obj[j] = 1
	}
	// Price out the artificial basis.
	for i := 0; i < nc; i++ {
		for j := 0; j <= total; j++ {
			obj[j] -= tab[i][j]
		}
	}
	if err := iterate(tab, basis, total); err != nil {
		return nil, err
	}
	if -obj[total] > eps {
		return nil, fmt.Errorf("lp: infeasible (phase-1 objective %g)", -obj[total])
	}
	// Drive any artificial variables out of the basis.
	for i := 0; i < nc; i++ {
		if basis[i] < nv+nc {
			continue
		}
		pivoted := false
		for j := 0; j < nv+nc; j++ {
			if math.Abs(tab[i][j]) > eps {
				pivot(tab, basis, i, j, total)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant constraint row; harmless.
			basis[i] = -1
		}
	}

	// Phase 2: original objective. Artificial variables are out of the
	// basis now; zeroing their columns removes them from the problem.
	for i := 0; i <= nc; i++ {
		for j := nv + nc; j < total; j++ {
			tab[i][j] = 0
		}
	}
	for j := 0; j <= total; j++ {
		obj[j] = 0
	}
	for j := 0; j < nv; j++ {
		obj[j] = p.C[j]
	}
	for i := 0; i < nc; i++ {
		if basis[i] >= 0 && basis[i] < nv && math.Abs(p.C[basis[i]]) > eps {
			coef := p.C[basis[i]]
			for j := 0; j <= total; j++ {
				obj[j] -= coef * tab[i][j]
			}
		}
	}
	if err := iterate(tab, basis, total); err != nil {
		return nil, err
	}

	x := make([]float64, nv)
	for i := 0; i < nc; i++ {
		if basis[i] >= 0 && basis[i] < nv {
			x[basis[i]] = tab[i][total]
		}
	}
	val := 0.0
	for j := 0; j < nv; j++ {
		val += p.C[j] * x[j]
	}
	return &Solution{X: x, Value: val}, nil
}

// iterate runs simplex pivots with Bland's rule until optimality.
func iterate(tab [][]float64, basis []int, total int) error {
	nc := len(basis)
	obj := tab[nc]
	for step := 0; ; step++ {
		if step > 200000 {
			return fmt.Errorf("lp: iteration limit exceeded")
		}
		// Entering variable: smallest index with negative reduced cost.
		enter := -1
		for j := 0; j < total; j++ {
			if obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return nil
		}
		// Leaving row: minimum ratio, ties by smallest basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < nc; i++ {
			if tab[i][enter] > eps {
				ratio := tab[i][total] / tab[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return fmt.Errorf("lp: unbounded")
		}
		pivot(tab, basis, leave, enter, total)
	}
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func pivot(tab [][]float64, basis []int, row, col, total int) {
	pr := tab[row]
	pv := pr[col]
	for j := 0; j <= total; j++ {
		pr[j] /= pv
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if math.Abs(f) < eps {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * pr[j]
		}
	}
	basis[row] = col
}
