package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimple2D(t *testing.T) {
	// minimize x+y s.t. x+2y >= 4, 3x+y >= 6  -> optimum at (8/5, 6/5), value 14/5.
	sol, err := Solve(Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 2}, {3, 1}},
		B: []float64{4, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 14.0/5) {
		t.Errorf("Value = %g, want 2.8", sol.Value)
	}
}

func TestTriangleFractionalCover(t *testing.T) {
	// The triangle query fractional edge cover: three edges {A,B},{B,C},
	// {A,C}; each vertex covered: optimum x = (1/2,1/2,1/2), value 3/2.
	sol, err := Solve(Problem{
		C: []float64{1, 1, 1},
		A: [][]float64{
			{1, 0, 1}, // A: edges 0 and 2
			{1, 1, 0}, // B: edges 0 and 1
			{0, 1, 1}, // C: edges 1 and 2
		},
		B: []float64{1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 1.5) {
		t.Errorf("triangle ρ* = %g, want 1.5", sol.Value)
	}
}

func TestWeightedCover(t *testing.T) {
	// Same triangle but edge 0 is free: put weight on it; the optimum
	// uses edge 0 fully (covers A,B) and one of the others for C.
	sol, err := Solve(Problem{
		C: []float64{0, 1, 1},
		A: [][]float64{
			{1, 0, 1},
			{1, 1, 0},
			{0, 1, 1},
		},
		B: []float64{1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 1.0) {
		t.Errorf("Value = %g, want 1", sol.Value)
	}
}

func TestInfeasible(t *testing.T) {
	// x >= 1 and -x >= 0 cannot both hold with x >= 0... -x >= 0 forces x=0.
	_, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, 0},
	})
	if err == nil {
		t.Fatal("infeasible problem solved")
	}
}

func TestUnbounded(t *testing.T) {
	// minimize -x s.t. x >= 0: unbounded below.
	_, err := Solve(Problem{
		C: []float64{-1},
		A: [][]float64{{1}},
		B: []float64{0},
	})
	if err == nil {
		t.Fatal("unbounded problem solved")
	}
}

func TestNoConstraints(t *testing.T) {
	// minimize x with x >= 0 and no constraints: optimum 0.
	sol, err := Solve(Problem{C: []float64{1}, A: nil, B: nil})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 0) {
		t.Errorf("Value = %g", sol.Value)
	}
}

func TestMalformed(t *testing.T) {
	if _, err := Solve(Problem{}); err == nil {
		t.Error("empty problem accepted")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Error("ragged constraint accepted")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: nil}); err == nil {
		t.Error("missing rhs accepted")
	}
}

func TestNegativeRHS(t *testing.T) {
	// x - y >= -2, x + y >= 4, minimize x: feasible, x can be as small as
	// 1 (x=1, y=3 satisfies both).
	sol, err := Solve(Problem{
		C: []float64{1, 0},
		A: [][]float64{{1, -1}, {1, 1}},
		B: []float64{-2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 1) {
		t.Errorf("Value = %g, want 1", sol.Value)
	}
}

// TestRandomCoverAgainstBruteForce compares LP optima of random small
// covering problems with a fine grid search.
func TestRandomCoverAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		// Random covering problem with 2 variables, integer data.
		a := [][]float64{
			{float64(1 + r.Intn(3)), float64(r.Intn(3))},
			{float64(r.Intn(3)), float64(1 + r.Intn(3))},
		}
		b := []float64{float64(1 + r.Intn(4)), float64(1 + r.Intn(4))}
		c := []float64{float64(1 + r.Intn(3)), float64(1 + r.Intn(3))}
		sol, err := Solve(Problem{C: c, A: a, B: b})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		best := math.Inf(1)
		const steps = 200
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				x := float64(i) * 0.05
				y := float64(j) * 0.05
				if a[0][0]*x+a[0][1]*y >= b[0]-1e-9 && a[1][0]*x+a[1][1]*y >= b[1]-1e-9 {
					if v := c[0]*x + c[1]*y; v < best {
						best = v
					}
				}
			}
		}
		if sol.Value > best+1e-6 {
			t.Errorf("trial %d: LP value %g worse than grid %g", trial, sol.Value, best)
		}
		if sol.Value < best-0.2 {
			// Grid resolution is 0.05 per axis; LP can be better but not
			// wildly so for these coefficients.
			t.Errorf("trial %d: LP value %g suspiciously below grid %g", trial, sol.Value, best)
		}
	}
}

// TestSolutionFeasibility: returned X must satisfy all constraints.
func TestSolutionFeasibility(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		nv := 1 + r.Intn(4)
		nc := 1 + r.Intn(4)
		p := Problem{C: make([]float64, nv), A: make([][]float64, nc), B: make([]float64, nc)}
		for j := range p.C {
			p.C[j] = float64(1 + r.Intn(5))
		}
		for i := range p.A {
			p.A[i] = make([]float64, nv)
			for j := range p.A[i] {
				p.A[i][j] = float64(r.Intn(4))
			}
			p.B[i] = float64(r.Intn(5))
		}
		sol, err := Solve(p)
		if err != nil {
			// Covering problems with a zero row and positive rhs are
			// legitimately infeasible.
			continue
		}
		for i := range p.A {
			lhs := 0.0
			for j := range p.A[i] {
				lhs += p.A[i][j] * sol.X[j]
			}
			if lhs < p.B[i]-1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %g < %g", trial, i, lhs, p.B[i])
			}
		}
		for j, x := range sol.X {
			if x < -1e-9 {
				t.Fatalf("trial %d: x[%d] = %g negative", trial, j, x)
			}
		}
	}
}
