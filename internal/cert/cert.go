// Package cert works with box certificates (Definitions 3.1 and 3.4 of
// the Tetris paper): subsets of the gap box set whose union equals the
// union of all gap boxes. The minimum certificate size |C| is the
// complexity measure of the paper's beyond-worst-case results.
//
// Computing a minimum certificate is a set-cover-like problem; this
// package provides exact minimum search for small inputs, an
// inclusion-minimal certificate for larger ones (both using Tetris
// itself as the coverage decision procedure), and union-equality
// verification.
package cert

import (
	"fmt"
	"sort"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/dyadic"
)

// coveredBy reports whether box b is covered by the union of the boxes.
func coveredBy(depths []uint8, boxes []dyadic.Box, b dyadic.Box) (bool, error) {
	rep, err := core.CoversTarget(depths, boxes, b, core.Options{})
	if err != nil {
		return false, err
	}
	return rep.Covered, nil
}

// SameUnion reports whether the two box sets cover exactly the same
// region: every box of each set is covered by the other set's union.
func SameUnion(depths []uint8, a, b []dyadic.Box) (bool, error) {
	for _, box := range a {
		ok, err := coveredBy(depths, b, box)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	for _, box := range b {
		ok, err := coveredBy(depths, a, box)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Verify reports whether subset is a box certificate for boxes: subset ⊆
// boxes (by box equality) and the unions coincide.
func Verify(depths []uint8, boxes, subset []dyadic.Box) (bool, error) {
	all := map[string]bool{}
	for _, b := range boxes {
		all[b.Key()] = true
	}
	for _, s := range subset {
		if !all[s.Key()] {
			return false, fmt.Errorf("cert: box %v is not among the gap boxes", s)
		}
	}
	return SameUnion(depths, boxes, subset)
}

// Minimal returns an inclusion-minimal certificate: boxes are dropped
// (largest-last order) whenever the remaining set still covers them. The
// result is minimal — no further box can be removed — though not
// necessarily minimum.
func Minimal(depths []uint8, boxes []dyadic.Box) ([]dyadic.Box, error) {
	// Deduplicate, then try to drop small boxes first so large ones
	// remain as covers.
	seen := map[string]bool{}
	var work []dyadic.Box
	for _, b := range boxes {
		if k := b.Key(); !seen[k] {
			seen[k] = true
			work = append(work, b)
		}
	}
	sort.Slice(work, func(i, j int) bool {
		return work[i].LogVolume(depths) < work[j].LogVolume(depths)
	})
	kept := append([]dyadic.Box(nil), work...)
	for i := 0; i < len(kept); i++ {
		rest := make([]dyadic.Box, 0, len(kept)-1)
		rest = append(rest, kept[:i]...)
		rest = append(rest, kept[i+1:]...)
		ok, err := coveredBy(depths, rest, kept[i])
		if err != nil {
			return nil, err
		}
		if ok {
			kept = rest
			i--
		}
	}
	return kept, nil
}

// Minimum returns a minimum-size certificate by exhaustive subset search,
// guarded to at most 20 distinct boxes.
func Minimum(depths []uint8, boxes []dyadic.Box) ([]dyadic.Box, error) {
	seen := map[string]bool{}
	var work []dyadic.Box
	for _, b := range boxes {
		if k := b.Key(); !seen[k] {
			seen[k] = true
			work = append(work, b)
		}
	}
	m := len(work)
	if m > 20 {
		return nil, fmt.Errorf("cert: Minimum limited to 20 distinct boxes, have %d", m)
	}
	if m == 0 {
		return nil, nil
	}
	// Try subsets in order of increasing size.
	for size := 0; size <= m; size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			sub := make([]dyadic.Box, size)
			for i, j := range idx {
				sub[i] = work[j]
			}
			same, err := SameUnion(depths, work, sub)
			if err != nil {
				return nil, err
			}
			if same {
				return sub, nil
			}
			// Next combination.
			i := size - 1
			for i >= 0 && idx[i] == m-size+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < size; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}
	return work, nil // unreachable: the full set always works
}
