package cert

import (
	"math/rand"
	"testing"

	"tetrisjoin/internal/dyadic"
)

func boxes(ss ...string) []dyadic.Box {
	out := make([]dyadic.Box, len(ss))
	for i, s := range ss {
		out[i] = dyadic.MustParseBox(s)
	}
	return out
}

func depths2(d uint8) []uint8 { return []uint8{d, d} }

func TestSameUnion(t *testing.T) {
	d := depths2(2)
	// ⟨0,λ⟩ == ⟨00,λ⟩ ∪ ⟨01,λ⟩.
	same, err := SameUnion(d, boxes("0,λ"), boxes("00,λ", "01,λ"))
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Error("equal unions reported different")
	}
	same, err = SameUnion(d, boxes("0,λ"), boxes("00,λ"))
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Error("different unions reported equal")
	}
}

func TestVerify(t *testing.T) {
	d := depths2(2)
	all := boxes("0,λ", "00,λ", "λ,1")
	ok, err := Verify(d, all, boxes("0,λ", "λ,1"))
	if err != nil || !ok {
		t.Errorf("valid certificate rejected: %v %v", ok, err)
	}
	ok, err = Verify(d, all, boxes("00,λ", "λ,1"))
	if err != nil || ok {
		t.Errorf("incomplete certificate accepted: %v %v", ok, err)
	}
	if _, err = Verify(d, all, boxes("11,λ")); err == nil {
		t.Error("foreign box accepted")
	}
}

func TestMinimalDropsRedundant(t *testing.T) {
	d := depths2(3)
	// ⟨0,λ⟩ subsumes the two smaller boxes; ⟨1,λ⟩ needed as well.
	all := boxes("0,λ", "00,λ", "01,01", "1,λ")
	min, err := Minimal(d, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 2 {
		t.Fatalf("Minimal = %v, want 2 boxes", min)
	}
	ok, err := Verify(d, all, min)
	if err != nil || !ok {
		t.Errorf("Minimal result is not a certificate: %v %v", ok, err)
	}
}

func TestMinimalHandlesJointCoverage(t *testing.T) {
	d := depths2(2)
	// ⟨λ,0⟩ ∪ ⟨λ,1⟩ covers everything, so ⟨0,λ⟩ is redundant — but only
	// through their union, not through any single box.
	all := boxes("λ,0", "λ,1", "0,λ")
	min, err := Minimal(d, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 2 {
		t.Fatalf("Minimal = %v", min)
	}
}

func TestMinimum(t *testing.T) {
	d := depths2(2)
	// Union is ⟨λ,λ⟩; minimum certificate is the two halves {⟨0,λ⟩,⟨1,λ⟩},
	// even though three other boxes also cover parts.
	all := boxes("0,λ", "1,λ", "00,λ", "λ,00", "10,1")
	min, err := Minimum(d, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 2 {
		t.Fatalf("Minimum = %v, want 2 boxes", min)
	}
	ok, err := Verify(d, all, min)
	if err != nil || !ok {
		t.Error("Minimum result is not a certificate")
	}
	// Minimum ≤ Minimal always.
	minimal, err := Minimal(d, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) > len(minimal) {
		t.Errorf("Minimum %d > Minimal %d", len(min), len(minimal))
	}
}

func TestMinimumEdgeCases(t *testing.T) {
	d := depths2(2)
	min, err := Minimum(d, nil)
	if err != nil || len(min) != 0 {
		t.Error("empty input")
	}
	d3 := depths2(3)
	big := make([]dyadic.Box, 21)
	for i := range big {
		big[i] = dyadic.Point([]uint64{uint64(i % 8), uint64(i / 8)}, d3)
	}
	if _, err := Minimum(d3, big); err == nil {
		t.Error("oversized input accepted")
	}
	// Duplicates collapse.
	min, err = Minimum(d, boxes("0,λ", "0,λ", "0,λ"))
	if err != nil || len(min) != 1 {
		t.Errorf("duplicate collapse: %v %v", min, err)
	}
}

// pointCover returns the bitset of points covered by the boxes over the
// (small) grid of the given depths, for brute-force cross-checks.
func pointCover(depths []uint8, bs []dyadic.Box) map[uint64]bool {
	totalBits := 0
	for _, d := range depths {
		totalBits += int(d)
	}
	cov := map[uint64]bool{}
	point := make([]uint64, len(depths))
	for enc := uint64(0); enc < 1<<totalBits; enc++ {
		v := enc
		for i := len(depths) - 1; i >= 0; i-- {
			point[i] = v & (1<<depths[i] - 1)
			v >>= depths[i]
		}
		for _, b := range bs {
			if b.ContainsPoint(point, depths) {
				cov[enc] = true
				break
			}
		}
	}
	return cov
}

func sameCover(a, b map[uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// bruteMinimumSize exhaustively searches all subsets for the smallest
// one covering the same point set as the full input — the ground truth
// Minimum must match. Inputs are deduplicated the same way Minimum
// dedupes (by box identity).
func bruteMinimumSize(t *testing.T, depths []uint8, bs []dyadic.Box) int {
	t.Helper()
	seen := map[string]bool{}
	var work []dyadic.Box
	for _, b := range bs {
		if k := b.Key(); !seen[k] {
			seen[k] = true
			work = append(work, b)
		}
	}
	full := pointCover(depths, work)
	best := len(work)
	for mask := uint64(0); mask < 1<<len(work); mask++ {
		n := 0
		var sub []dyadic.Box
		for i, b := range work {
			if mask>>i&1 == 1 {
				n++
				sub = append(sub, b)
			}
		}
		if n >= best {
			continue
		}
		if sameCover(pointCover(depths, sub), full) {
			best = n
		}
	}
	return best
}

// TestMinimumMatchesBruteForce cross-checks the Tetris-based Minimum
// search against exhaustive minimum-subcover search on small random
// inputs (the certificate analogue of the engine differential tests).
func TestMinimumMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(2)
		depths := make([]uint8, n)
		for i := range depths {
			depths[i] = uint8(1 + r.Intn(3-n+1)) // total bits small enough to enumerate
		}
		m := r.Intn(9)
		bs := make([]dyadic.Box, m)
		for i := range bs {
			b := make(dyadic.Box, n)
			for j := range b {
				l := uint8(r.Intn(int(depths[j]) + 1))
				var bits uint64
				if l > 0 {
					bits = uint64(r.Intn(1 << l))
				}
				b[j] = dyadic.Interval{Bits: bits, Len: l}
			}
			bs[i] = b
		}
		want := bruteMinimumSize(t, depths, bs)
		got, err := Minimum(depths, bs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != want {
			t.Fatalf("trial %d: Minimum found %d boxes, brute force %d (input %v)", trial, len(got), want, bs)
		}
		// And Minimum must be a certificate of the input.
		if m > 0 {
			ok, err := Verify(depths, bs, got)
			if err != nil || !ok {
				t.Fatalf("trial %d: Minimum result is not a certificate: %v %v", trial, ok, err)
			}
		}
	}
}

// TestMinimalIsInclusionMinimal: on random inputs Minimal must return a
// certificate from which no single box can be dropped — checked against
// the brute-force point cover, independently of the Tetris coverage
// decision procedure Minimal itself uses.
func TestMinimalIsInclusionMinimal(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		depths := []uint8{uint8(1 + r.Intn(2)), uint8(1 + r.Intn(2))}
		m := 1 + r.Intn(8)
		bs := make([]dyadic.Box, m)
		for i := range bs {
			b := make(dyadic.Box, 2)
			for j := range b {
				l := uint8(r.Intn(int(depths[j]) + 1))
				var bits uint64
				if l > 0 {
					bits = uint64(r.Intn(1 << l))
				}
				b[j] = dyadic.Interval{Bits: bits, Len: l}
			}
			bs[i] = b
		}
		kept, err := Minimal(depths, bs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		full := pointCover(depths, bs)
		if !sameCover(pointCover(depths, kept), full) {
			t.Fatalf("trial %d: Minimal result covers a different region", trial)
		}
		for i := range kept {
			rest := make([]dyadic.Box, 0, len(kept)-1)
			rest = append(rest, kept[:i]...)
			rest = append(rest, kept[i+1:]...)
			if sameCover(pointCover(depths, rest), full) {
				t.Fatalf("trial %d: box %v is redundant in Minimal result %v", trial, kept[i], kept)
			}
		}
	}
}
