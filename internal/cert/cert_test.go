package cert

import (
	"testing"

	"tetrisjoin/internal/dyadic"
)

func boxes(ss ...string) []dyadic.Box {
	out := make([]dyadic.Box, len(ss))
	for i, s := range ss {
		out[i] = dyadic.MustParseBox(s)
	}
	return out
}

func depths2(d uint8) []uint8 { return []uint8{d, d} }

func TestSameUnion(t *testing.T) {
	d := depths2(2)
	// ⟨0,λ⟩ == ⟨00,λ⟩ ∪ ⟨01,λ⟩.
	same, err := SameUnion(d, boxes("0,λ"), boxes("00,λ", "01,λ"))
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Error("equal unions reported different")
	}
	same, err = SameUnion(d, boxes("0,λ"), boxes("00,λ"))
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Error("different unions reported equal")
	}
}

func TestVerify(t *testing.T) {
	d := depths2(2)
	all := boxes("0,λ", "00,λ", "λ,1")
	ok, err := Verify(d, all, boxes("0,λ", "λ,1"))
	if err != nil || !ok {
		t.Errorf("valid certificate rejected: %v %v", ok, err)
	}
	ok, err = Verify(d, all, boxes("00,λ", "λ,1"))
	if err != nil || ok {
		t.Errorf("incomplete certificate accepted: %v %v", ok, err)
	}
	if _, err = Verify(d, all, boxes("11,λ")); err == nil {
		t.Error("foreign box accepted")
	}
}

func TestMinimalDropsRedundant(t *testing.T) {
	d := depths2(3)
	// ⟨0,λ⟩ subsumes the two smaller boxes; ⟨1,λ⟩ needed as well.
	all := boxes("0,λ", "00,λ", "01,01", "1,λ")
	min, err := Minimal(d, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 2 {
		t.Fatalf("Minimal = %v, want 2 boxes", min)
	}
	ok, err := Verify(d, all, min)
	if err != nil || !ok {
		t.Errorf("Minimal result is not a certificate: %v %v", ok, err)
	}
}

func TestMinimalHandlesJointCoverage(t *testing.T) {
	d := depths2(2)
	// ⟨λ,0⟩ ∪ ⟨λ,1⟩ covers everything, so ⟨0,λ⟩ is redundant — but only
	// through their union, not through any single box.
	all := boxes("λ,0", "λ,1", "0,λ")
	min, err := Minimal(d, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 2 {
		t.Fatalf("Minimal = %v", min)
	}
}

func TestMinimum(t *testing.T) {
	d := depths2(2)
	// Union is ⟨λ,λ⟩; minimum certificate is the two halves {⟨0,λ⟩,⟨1,λ⟩},
	// even though three other boxes also cover parts.
	all := boxes("0,λ", "1,λ", "00,λ", "λ,00", "10,1")
	min, err := Minimum(d, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 2 {
		t.Fatalf("Minimum = %v, want 2 boxes", min)
	}
	ok, err := Verify(d, all, min)
	if err != nil || !ok {
		t.Error("Minimum result is not a certificate")
	}
	// Minimum ≤ Minimal always.
	minimal, err := Minimal(d, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) > len(minimal) {
		t.Errorf("Minimum %d > Minimal %d", len(min), len(minimal))
	}
}

func TestMinimumEdgeCases(t *testing.T) {
	d := depths2(2)
	min, err := Minimum(d, nil)
	if err != nil || len(min) != 0 {
		t.Error("empty input")
	}
	d3 := depths2(3)
	big := make([]dyadic.Box, 21)
	for i := range big {
		big[i] = dyadic.Point([]uint64{uint64(i % 8), uint64(i / 8)}, d3)
	}
	if _, err := Minimum(d3, big); err == nil {
		t.Error("oversized input accepted")
	}
	// Duplicates collapse.
	min, err = Minimum(d, boxes("0,λ", "0,λ", "0,λ"))
	if err != nil || len(min) != 1 {
		t.Errorf("duplicate collapse: %v %v", min, err)
	}
}
