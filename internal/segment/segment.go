// Package segment is the on-disk container for index and relation
// slabs. A segment is a flat sequence of 64-bit words framed by a
// versioned, CRC-checked header: the writer lays sections out 8-byte
// aligned and the loader hands back zero-copy []uint64 views over the
// raw file bytes, so uint32-indexed nodes and offset-indexed payloads
// are usable in place with no decode pass.
//
// Byte order is explicitly native-with-detection rather than fixed:
// every word is written in the producing machine's byte order, and the
// header carries a byte-order mark word. A loader on a machine with
// the opposite endianness reads the mark byte-swapped and rejects the
// file, instead of silently mis-reading node offsets. (The magic alone
// cannot catch this: it is raw bytes, identical either way.) This is
// the same contract an mmap'd load would need, and the format is laid
// out so that mapping the file read-only and passing the mapping to
// Load works unchanged; the default loader is a single ReadFile to
// stay dependency-free.
package segment

import (
	"errors"
	"fmt"
	"hash/crc32"
	"unsafe"
)

// Magic identifies a segment file. It is written as raw bytes, so it
// matches on any architecture; endianness is checked separately.
const Magic = "TSEG0001"

// bom is the byte-order mark. Written as a native word; a cross-endian
// reader sees 0xEFCDAB8967452301 and rejects.
const bom = 0x0123456789ABCDEF

// Version is the current container layout version. Bump on any layout
// change; loaders reject other versions.
const Version = 1

const (
	headerWords = 4 // magic, bom, version|count, crc
	tocWords    = 3 // per section: kind|crc, offset, length
)

// ErrBadSegment wraps all load-time validation failures.
var ErrBadSegment = errors.New("segment: invalid segment")

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSegment, fmt.Sprintf(format, args...))
}

// Writer assembles a segment from typed word sections.
type Writer struct {
	sections []section
}

type section struct {
	kind  uint32
	words []uint64
}

// AddSection appends a section of the given kind and returns its
// index. The words are referenced, not copied; they must not change
// before Encode. Kinds are caller-defined and need not be unique.
func (w *Writer) AddSection(kind uint32, words []uint64) int {
	w.sections = append(w.sections, section{kind: kind, words: words})
	return len(w.sections) - 1
}

// Encode lays the segment out as a single byte slice: header, table of
// contents, then each section payload 8-byte aligned. Word payloads
// are emitted in native byte order.
func (w *Writer) Encode() []byte {
	total := headerWords + tocWords*len(w.sections)
	for _, s := range w.sections {
		total += len(s.words)
	}
	words := make([]uint64, total)
	buf := wordsToBytes(words)

	copy(buf[:8], Magic)
	words[1] = bom
	words[2] = uint64(Version) | uint64(len(w.sections))<<32

	off := (headerWords + tocWords*len(w.sections)) * 8
	for i, s := range w.sections {
		payload := wordsToBytes(s.words)
		copy(buf[off:], payload)
		crc := crc32.ChecksumIEEE(buf[off : off+len(payload)])
		t := headerWords + tocWords*i
		words[t] = uint64(s.kind) | uint64(crc)<<32
		words[t+1] = uint64(off)
		words[t+2] = uint64(len(payload))
		off += len(payload)
	}
	// Header CRC covers words 0..2 plus the whole TOC, i.e. everything
	// before the first payload except the CRC word itself.
	words[3] = uint64(headerCRC(buf, len(w.sections)))
	return buf
}

func headerCRC(buf []byte, sections int) uint32 {
	h := crc32.NewIEEE()
	h.Write(buf[:24]) // words 0..2
	h.Write(buf[32 : (headerWords+tocWords*sections)*8])
	return h.Sum32()
}

// File is a loaded segment: zero-copy word views over the file bytes.
type File struct {
	words    []uint64
	data     []byte
	sections int
}

// Load validates data as a segment and returns a File whose section
// views alias data (or a realigned copy of it if the caller handed us
// a buffer not 8-byte aligned — Go heap allocations of this size are
// aligned in practice, so the copy is a defensive rarity).
func Load(data []byte) (*File, error) {
	if len(data) < headerWords*8 {
		return nil, badf("short file: %d bytes", len(data))
	}
	if len(data)%8 != 0 {
		return nil, badf("size %d not a multiple of 8", len(data))
	}
	if string(data[:8]) != Magic {
		return nil, badf("bad magic %q", data[:8])
	}
	if uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		aligned := make([]uint64, len(data)/8)
		copy(wordsToBytes(aligned), data)
		data = wordsToBytes(aligned)
	}
	words := bytesToWords(data)
	if words[1] != bom {
		return nil, badf("byte-order mark %#x (cross-endian or corrupt)", words[1])
	}
	if v := uint32(words[2]); v != Version {
		return nil, badf("layout version %d, want %d", v, Version)
	}
	n := int(words[2] >> 32)
	firstPayload := headerWords + tocWords*n
	if n < 0 || firstPayload*8 > len(data) {
		return nil, badf("section count %d overflows %d-byte file", n, len(data))
	}
	if got, want := headerCRC(data, n), uint32(words[3]); got != want {
		return nil, badf("header crc %#x, want %#x", got, want)
	}
	f := &File{words: words, data: data, sections: n}
	for i := 0; i < n; i++ {
		t := headerWords + tocWords*i
		off, ln := words[t+1], words[t+2]
		if off%8 != 0 || ln%8 != 0 {
			return nil, badf("section %d misaligned (off %d len %d)", i, off, ln)
		}
		if off < uint64(firstPayload*8) || off+ln < off || off+ln > uint64(len(data)) {
			return nil, badf("section %d out of bounds (off %d len %d of %d)", i, off, ln, len(data))
		}
	}
	return f, nil
}

// Verify checks section i's payload against its recorded CRC. Load
// deliberately does not do this for every section up front: a consumer
// with several independent sections (e.g. a tuple slab plus per-index
// slabs) verifies each on use, so one corrupt section degrades only
// the structures stored in it instead of rejecting the whole file.
func (f *File) Verify(i int) error {
	t := headerWords + tocWords*i
	off, ln := f.words[t+1], f.words[t+2]
	if got, want := crc32.ChecksumIEEE(f.data[off:off+ln]), uint32(f.words[t]>>32); got != want {
		return badf("section %d crc %#x, want %#x", i, got, want)
	}
	return nil
}

// Sections reports the number of sections.
func (f *File) Sections() int { return f.sections }

// Kind reports section i's kind tag.
func (f *File) Kind(i int) uint32 {
	return uint32(f.words[headerWords+tocWords*i])
}

// Words returns section i's payload as a zero-copy word view.
func (f *File) Words(i int) []uint64 {
	t := headerWords + tocWords*i
	off, ln := f.words[t+1]/8, f.words[t+2]/8
	return f.words[off : off+ln : off+ln]
}

// Extent reports section i's byte range within the encoded file —
// useful for tooling (and tests) that target payload bytes directly.
func (f *File) Extent(i int) (off, length int64) {
	t := headerWords + tocWords*i
	return int64(f.words[t+1]), int64(f.words[t+2])
}

// wordsToBytes and bytesToWords reinterpret a slice in place, in
// native byte order. bytesToWords requires an 8-aligned base pointer
// (Load guarantees it before calling).
func wordsToBytes(w []uint64) []byte {
	if len(w) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), len(w)*8)
}

func bytesToWords(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}
