package segment

import (
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	a := []uint64{1, 2, 3, 0xDEADBEEF00000000}
	b := []uint64{}
	c := []uint64{42}
	if got := w.AddSection(7, a); got != 0 {
		t.Fatalf("first section index = %d", got)
	}
	w.AddSection(9, b)
	w.AddSection(7, c)
	buf := w.Encode()
	if len(buf)%8 != 0 {
		t.Fatalf("encoded size %d not word-aligned", len(buf))
	}

	f, err := Load(buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if f.Sections() != 3 {
		t.Fatalf("sections = %d, want 3", f.Sections())
	}
	wantKinds := []uint32{7, 9, 7}
	wantWords := [][]uint64{a, b, c}
	for i := range wantKinds {
		if f.Kind(i) != wantKinds[i] {
			t.Errorf("kind(%d) = %d, want %d", i, f.Kind(i), wantKinds[i])
		}
		got := f.Words(i)
		if len(got) != len(wantWords[i]) {
			t.Fatalf("section %d: %d words, want %d", i, len(got), len(wantWords[i]))
		}
		for j, v := range wantWords[i] {
			if got[j] != v {
				t.Errorf("section %d word %d = %d, want %d", i, j, got[j], v)
			}
		}
	}
}

func TestZeroCopy(t *testing.T) {
	var w Writer
	w.AddSection(1, []uint64{11, 22, 33})
	buf := w.Encode()
	f, err := Load(buf)
	if err != nil {
		t.Fatal(err)
	}
	words := f.Words(0)
	// Mutating the underlying buffer must show through the view:
	// proof that Load did not copy the payload.
	off, _ := f.Extent(0)
	buf[off] = 0x55
	if words[0] == 11 {
		t.Fatal("section view did not alias the file bytes")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	var w Writer
	w.AddSection(3, []uint64{5, 6, 7, 8})
	w.AddSection(4, []uint64{9})
	clean := w.Encode()

	if _, err := Load(clean); err != nil {
		t.Fatalf("clean load: %v", err)
	}

	cases := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"short", func(b []byte) []byte { return b[:16] }},
		{"unaligned-size", func(b []byte) []byte { return b[:len(b)-3] }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"bad-bom", func(b []byte) []byte { b[8] ^= 0x01; return b }},
		{"bad-version", func(b []byte) []byte { b[16] ^= 0x02; return b }},
		{"header-crc", func(b []byte) []byte { b[33] ^= 0x01; return b }}, // TOC byte
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-8] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), clean...)
			b = tc.mut(b)
			if _, err := Load(b); err == nil {
				t.Fatal("Load accepted corrupt segment")
			}
		})
	}
}

// TestVerifyIsolatesSections: flipping a payload byte passes Load (the
// header and TOC are intact) but fails Verify for exactly the damaged
// section — the contract that lets a consumer degrade one section
// while trusting the rest.
func TestVerifyIsolatesSections(t *testing.T) {
	var w Writer
	w.AddSection(3, []uint64{5, 6, 7, 8})
	w.AddSection(4, []uint64{9})
	buf := w.Encode()
	f, err := Load(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.Sections(); i++ {
		if err := f.Verify(i); err != nil {
			t.Fatalf("clean section %d: %v", i, err)
		}
	}
	off, _ := f.Extent(1)
	buf[off] ^= 0x80
	f, err = Load(buf)
	if err != nil {
		t.Fatalf("Load after payload flip: %v", err)
	}
	if err := f.Verify(0); err != nil {
		t.Fatalf("undamaged section 0 failed verify: %v", err)
	}
	if err := f.Verify(1); err == nil {
		t.Fatal("damaged section 1 passed verify")
	}
}

func TestLoadRealignsUnalignedBuffer(t *testing.T) {
	var w Writer
	payload := []uint64{100, 200, 300}
	w.AddSection(2, payload)
	clean := w.Encode()

	// Force a misaligned base pointer by slicing at an odd offset.
	backing := make([]byte, len(clean)+1)
	copy(backing[1:], clean)
	f, err := Load(backing[1:])
	if err != nil {
		t.Fatalf("Load(unaligned): %v", err)
	}
	got := f.Words(0)
	for i, v := range payload {
		if got[i] != v {
			t.Fatalf("word %d = %d, want %d", i, got[i], v)
		}
	}
}

func TestErrorsWrapSentinel(t *testing.T) {
	_, err := Load([]byte("not a segment at all........"))
	if err == nil || !strings.Contains(err.Error(), "segment") {
		t.Fatalf("err = %v", err)
	}
}
