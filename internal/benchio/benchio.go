// Package benchio records benchmark results as a machine-readable
// performance trajectory. Every run writes BENCH_tetris.json — one entry
// per benchmark with ns/op, allocs/op, bytes/op and resolutions/op (the
// paper's cost measure, Lemma 4.5) — so CI and successive PRs can diff
// performance instead of eyeballing test -bench output.
//
// Two producers feed the same format:
//
//   - cmd/bench runs the canonical Suite via testing.Benchmark and is the
//     way to regenerate the committed BENCH_tetris.json;
//   - the benchmarks in the repository root call Begin/End, so any
//     `go test -bench=…` run with the BENCH_OUT environment variable set
//     writes the entries it measured to that path.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
)

// Entry is the measurement of one benchmark.
type Entry struct {
	// Name is the benchmark name without the "Benchmark" prefix, e.g.
	// "Table1Acyclic/N=750".
	Name string `json:"name"`
	// N is the iteration count the numbers were averaged over.
	N int `json:"n"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes allocated per operation.
	BytesPerOp float64 `json:"bytes_per_op"`
	// ResolutionsPerOp is the number of geometric resolutions one
	// operation performs, when the benchmark reports it (0 otherwise).
	// Resolutions are deterministic for a fixed workload and plan, so this
	// column compares across machine classes; the timing columns do not.
	ResolutionsPerOp float64 `json:"resolutions_per_op,omitempty"`
	// IndexBuildsPerOp is the number of index constructions one operation
	// performs, when the benchmark reports it (0 otherwise, and absent
	// from the JSON). For the Recovery series it is deterministic — the
	// same image yields the same build count on any machine — which is
	// what `cmd/bench -gate-builds` keys on: the committed
	// Recovery/segment entry records 0, pinning rebuild-free recovery.
	IndexBuildsPerOp float64 `json:"index_builds_per_op,omitempty"`
	// Balance is the max/mean worker resolution share of a parallel run
	// (core.Stats.MaxWorkerResolutions / (Resolutions/ParallelWorkers)):
	// 1.0 is a perfectly balanced run, ParallelWorkers means one worker
	// did everything. 0 when the benchmark is sequential or does not
	// report it. Like resolutions it is a work-distribution measure, not
	// a timing, so it compares across machine classes.
	Balance float64 `json:"balance,omitempty"`
	// GoMaxProcs and NumCPU record the scheduler width the entry was
	// measured under — without them a workers=8 number from a 2-core
	// box would silently poison the parallel-speedup trajectory.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	NumCPU     int `json:"num_cpu,omitempty"`
	// MachineClass labels the hardware class of the run (see
	// MachineClass()). Entries from different classes are kept as
	// separate series: Set never overwrites one class's measurement
	// with another's, and cmd/bench only prints timing ratios within a
	// class.
	MachineClass string `json:"machine_class,omitempty"`
}

// ClassEnvVar overrides the derived machine-class label, for fleets
// whose hardware differs in ways GOOS/GOARCH/core count cannot see.
const ClassEnvVar = "BENCH_MACHINE_CLASS"

// MachineClass returns the label identifying the hardware class of this
// process: the BENCH_MACHINE_CLASS environment variable when set,
// otherwise "<goos>-<goarch>-c<NumCPU>".
func MachineClass() string {
	if c := os.Getenv(ClassEnvVar); c != "" {
		return c
	}
	return fmt.Sprintf("%s-%s-c%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}

// stamp fills the machine-environment columns of an entry in place.
func stamp(e *Entry) {
	e.GoMaxProcs = runtime.GOMAXPROCS(0)
	e.NumCPU = runtime.NumCPU()
	e.MachineClass = MachineClass()
}

// Report is the trajectory file: current entries plus, optionally, the
// entries of a reference run to compare against (the committed file keeps
// the go.mod-only pre-optimization numbers there).
type Report struct {
	GoVersion string  `json:"go_version"`
	GoOS      string  `json:"goos"`
	GoArch    string  `json:"goarch"`
	Entries   []Entry `json:"entries"`
	Baseline  []Entry `json:"baseline,omitempty"`
}

// NewReport returns an empty report stamped with the build environment.
func NewReport() *Report {
	return &Report{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
	}
}

// Set inserts or replaces the entry with the same name and machine
// class, keeping entries sorted so the JSON diffs cleanly. Entries
// measured on a different machine class are preserved as a separate
// series; an existing unlabeled entry (written before machine classes
// were recorded) is upgraded in place by whichever class measures the
// name first.
func (r *Report) Set(e Entry) {
	for i := range r.Entries {
		if r.Entries[i].Name == e.Name &&
			(r.Entries[i].MachineClass == e.MachineClass || r.Entries[i].MachineClass == "") {
			r.Entries[i] = e
			return
		}
	}
	r.Entries = append(r.Entries, e)
	sort.Slice(r.Entries, func(i, j int) bool {
		if r.Entries[i].Name != r.Entries[j].Name {
			return r.Entries[i].Name < r.Entries[j].Name
		}
		return r.Entries[i].MachineClass < r.Entries[j].MachineClass
	})
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// EnvVar names the environment variable that, when set, makes Begin/End
// write the collected entries to the named file after every benchmark.
const EnvVar = "BENCH_OUT"

var (
	collectMu sync.Mutex
	collected *Report
)

// Obs is an in-flight observation of one benchmark invocation.
type Obs struct {
	name         string
	startMallocs uint64
	startBytes   uint64
}

// Begin starts observing a benchmark body. Call it first inside the
// benchmark (it enables ReportAllocs), run the b.N loop, then call End.
func Begin(b *testing.B) *Obs {
	b.ReportAllocs()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Obs{
		name:         strings.TrimPrefix(b.Name(), "Benchmark"),
		startMallocs: ms.Mallocs,
		startBytes:   ms.TotalAlloc,
	}
}

// End finishes the observation and records the entry. The testing
// framework calls each benchmark several times with growing b.N; the
// record for a name is simply overwritten, so the final (largest-N)
// invocation wins. When the BENCH_OUT environment variable is set the
// accumulated report is rewritten to that path on every End, which is
// what lets a plain `go test -bench=… -benchtime=1x` run exercise the
// writer end to end.
func (o *Obs) End(b *testing.B, m Metrics) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	n := b.N
	e := Entry{
		Name:             o.name,
		N:                n,
		NsPerOp:          float64(b.Elapsed().Nanoseconds()) / float64(n),
		AllocsPerOp:      float64(ms.Mallocs-o.startMallocs) / float64(n),
		BytesPerOp:       float64(ms.TotalAlloc-o.startBytes) / float64(n),
		ResolutionsPerOp: m.Resolutions,
		IndexBuildsPerOp: m.IndexBuilds,
		Balance:          m.Balance,
	}
	stamp(&e)
	collectMu.Lock()
	defer collectMu.Unlock()
	if collected == nil {
		collected = NewReport()
	}
	collected.Set(e)
	if path := os.Getenv(EnvVar); path != "" {
		if err := collected.WriteFile(path); err != nil {
			b.Logf("benchio: writing %s: %v", path, err)
		}
	}
}
