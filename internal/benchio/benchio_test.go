package benchio

import (
	"path/filepath"
	"regexp"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	rep := NewReport()
	rep.Set(Entry{Name: "b/two", N: 3, NsPerOp: 2.5, AllocsPerOp: 1, BytesPerOp: 64, ResolutionsPerOp: 7})
	rep.Set(Entry{Name: "a/one", N: 1, NsPerOp: 10})
	rep.Set(Entry{Name: "b/two", N: 6, NsPerOp: 2, AllocsPerOp: 1, BytesPerOp: 64, ResolutionsPerOp: 7})
	rep.Baseline = []Entry{{Name: "a/one", N: 1, NsPerOp: 100}}

	if len(rep.Entries) != 2 {
		t.Fatalf("Set did not replace by name: %d entries", len(rep.Entries))
	}
	if rep.Entries[0].Name != "a/one" || rep.Entries[1].Name != "b/two" {
		t.Fatalf("entries not sorted by name: %+v", rep.Entries)
	}
	if rep.Entries[1].N != 6 {
		t.Fatalf("Set kept the stale entry: %+v", rep.Entries[1])
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 || got.Entries[1].ResolutionsPerOp != 7 {
		t.Fatalf("round trip lost data: %+v", got.Entries)
	}
	if len(got.Baseline) != 1 || got.Baseline[0].NsPerOp != 100 {
		t.Fatalf("round trip lost baseline: %+v", got.Baseline)
	}
	if got.GoOS == "" || got.GoVersion == "" {
		t.Fatalf("environment stamp missing: %+v", got)
	}
}

// TestSuiteSmoke runs the lightest suite case once to keep the harness
// wired end to end.
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke is not short")
	}
	rep := RunSuite(regexp.MustCompile(`^KleeBoolean/B=32$`))
	if len(rep.Entries) != 1 {
		t.Fatalf("RunSuite matched %d entries, want 1", len(rep.Entries))
	}
	e := rep.Entries[0]
	if e.NsPerOp <= 0 || e.N <= 0 {
		t.Fatalf("implausible measurement: %+v", e)
	}
}
