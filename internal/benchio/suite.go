package benchio

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"sync"
	"testing"

	"tetrisjoin/internal/baseline"
	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/durable"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/klee"
	"tetrisjoin/internal/relation"
	"tetrisjoin/internal/wal"
	"tetrisjoin/internal/workload"
)

// Metrics are the work-distribution measures a benchmark body reports
// alongside the timing the framework collects: resolutions/op (the
// paper's cost measure) and, for parallel runs, the max/mean worker
// balance share. Both are deterministic enough to compare across
// machine classes, unlike ns/op.
type Metrics struct {
	Resolutions float64
	Balance     float64
	// IndexBuilds is the number of index constructions one operation
	// performed — reported by the Recovery series, where it is
	// deterministic (segment-backed recovery commits 0).
	IndexBuilds float64
}

// balanceOf extracts the max/mean worker resolution share from a run's
// statistics: MaxWorkerResolutions / (Resolutions / ParallelWorkers),
// 0 for sequential runs or runs that did no resolution work.
func balanceOf(s core.Stats) float64 {
	if s.ParallelWorkers <= 1 || s.Resolutions == 0 {
		return 0
	}
	return float64(s.MaxWorkerResolutions) / (float64(s.Resolutions) / float64(s.ParallelWorkers))
}

// Case is one benchmark of the canonical suite. Bench runs the measured
// body b.N times and returns the work metrics of one operation (zero
// when not applicable). Workloads are constructed when Suite is called —
// except the large parallel-series instances, which build lazily on
// first use — so Bench bodies contain nothing but the measured loop.
type Case struct {
	Name  string
	Bench func(b *testing.B) Metrics
}

// Suite is the canonical benchmark set of the performance trajectory:
// the Table 1 acyclic series (the worst-case-optimal workhorse), the
// algorithm shoot-out on the AGM-hard star triangle, and the Boolean
// Klee instances. It is the single source of truth for these workloads:
// the identically named benchmarks in the repository root iterate this
// suite, so numbers from cmd/bench and from `go test -bench` always
// describe the same work.
func Suite() []Case {
	cases := []Case{}
	for _, n := range []int{250, 1000, 4000} {
		q := workload.PathQuery(3, n, 12, int64(n))
		cases = append(cases, Case{
			Name:  fmt.Sprintf("Table1Acyclic/N=%d", 3*n),
			Bench: execBench(q, join.Options{Mode: core.Preloaded}),
		})
	}
	star := workload.TriangleAGMStar(64, 12)
	cases = append(cases,
		Case{Name: "Baselines/tetris-preloaded", Bench: execBench(star, join.Options{Mode: core.Preloaded})},
		Case{Name: "Baselines/tetris-reloaded", Bench: execBench(star, join.Options{Mode: core.Reloaded})},
		Case{Name: "Baselines/generic-join", Bench: func(b *testing.B) Metrics {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.GenericJoin(star, nil); err != nil {
					b.Fatal(err)
				}
			}
			return Metrics{}
		}},
		Case{Name: "Baselines/leapfrog", Bench: func(b *testing.B) Metrics {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.Leapfrog(star, nil); err != nil {
					b.Fatal(err)
				}
			}
			return Metrics{}
		}},
		Case{Name: "Baselines/hash-join", Bench: func(b *testing.B) Metrics {
			for i := 0; i < b.N; i++ {
				if _, _, err := baseline.HashJoin(star); err != nil {
					b.Fatal(err)
				}
			}
			return Metrics{}
		}},
	)
	for _, m := range []int{32, 128} {
		inst := workload.RandomBoxes(3, m, 8, int64(m))
		cases = append(cases, Case{
			Name: fmt.Sprintf("KleeBoolean/B=%d", m),
			Bench: func(b *testing.B) Metrics {
				for i := 0; i < b.N; i++ {
					if _, err := klee.CoversSpace(inst.Depths, inst.Boxes); err != nil {
						b.Fatal(err)
					}
				}
				return Metrics{}
			},
		})
	}
	// Parallel speedup series: the sharded executor on the largest
	// Table 1 acyclic instance and on an output-heavy dense triangle,
	// across worker counts. workers=1 is the plain sequential engine, so
	// the per-entry ratios are the executor's true speedup (on multi-core
	// hardware; a GOMAXPROCS=1 machine records the sharding overhead
	// instead). The instances are built lazily on first use — and the
	// series sits at the end of the suite — so the other cases never pay
	// GC pressure for these large live workloads.
	bigPath := sync.OnceValue(func() *join.Query { return workload.PathQuery(3, 4000, 12, 4000) })
	bigTri := sync.OnceValue(func() *join.Query { return workload.TriangleDense(40, 12) })
	for _, workers := range []int{1, 2, 4, 8} {
		cases = append(cases,
			Case{
				Name:  fmt.Sprintf("Parallel/Table1Acyclic/N=12000/workers=%d", workers),
				Bench: lazyExecBench(bigPath, join.Options{Mode: core.Preloaded, Parallelism: workers}),
			},
			Case{
				Name:  fmt.Sprintf("Parallel/TriangleDense/m=40/workers=%d", workers),
				Bench: lazyExecBench(bigTri, join.Options{Mode: core.Preloaded, Parallelism: workers}),
			},
		)
	}
	// Prepared amortization series: Nth-execution cost of a catalog-
	// prepared statement (warm indexes, memoized B(Q), shared Preloaded
	// base) vs the one-shot cost that pays planning and index builds on
	// every call. Sequential (Parallelism 1): the ratio measures
	// amortization of per-query constant work, not thread throughput.
	prepPath := sync.OnceValue(func() *join.Query { return workload.PathQuery(3, 1000, 12, 1000) })
	prepStar := sync.OnceValue(func() *join.Query { return workload.TriangleAGMStar(64, 12) })
	for _, inst := range []struct {
		name string
		mk   func() *join.Query
	}{
		{"Prepared/Table1Acyclic/N=3000", prepPath},
		{"Prepared/TriangleStar/m=64", prepStar},
	} {
		opts := join.Options{Mode: core.Preloaded, Parallelism: 1}
		cases = append(cases,
			Case{Name: inst.name + "/oneshot", Bench: lazyExecBench(inst.mk, opts)},
			Case{Name: inst.name + "/steady", Bench: lazyPreparedBench(inst.mk, opts)},
		)
	}
	// Incremental maintenance series: per-iteration cost of a 1-tuple
	// Append followed by Execute on the Table 1 acyclic workhorse. The
	// patched entry serves the query from a maintained statement (delta
	// passes over the prior result, O(k) index layers); the recompute
	// entry re-runs the query from scratch after every write — the two
	// ends of the maintained-vs-recompute trade EXPERIMENTS.md tabulates.
	cases = append(cases,
		Case{Name: "Maintained/Table1Acyclic/N=3000/patched", Bench: maintainedBench(1000, true)},
		Case{Name: "Maintained/Table1Acyclic/N=3000/recompute", Bench: maintainedBench(1000, false)},
	)
	// Planner skew series: the statistics-driven SAO planner against the
	// natural (first-occurrence) order on the skewed adversarial
	// families it exists for. The resolutions/op column is the series
	// that matters — it is deterministic for a fixed workload and plan,
	// so `cmd/bench -gate` holds the planned entries to the committed
	// trajectory (a >5% resolution regression fails CI) on any machine
	// class, while ns/op stays class-local context.
	for _, inst := range []struct {
		name string
		mk   func() *join.Query
	}{
		{"SkewedTriangle", sync.OnceValue(func() *join.Query { return workload.SkewedTriangle(32, 6) })},
		{"SkewedFourCycle", sync.OnceValue(func() *join.Query { return workload.SkewedFourCycle(16, 5) })},
		{"HeavyValueMismatch", sync.OnceValue(func() *join.Query { return workload.HeavyValueMismatch(32, 6) })},
		{"GAOSensitive", sync.OnceValue(func() *join.Query { return workload.GAOSensitive(32, 6) })},
		{"PinnedChain", sync.OnceValue(func() *join.Query { return workload.PinnedChain(512, 26) })},
	} {
		cases = append(cases,
			Case{
				Name:  "PlannerSkew/" + inst.name + "/planned",
				Bench: lazyExecBench(inst.mk, join.Options{Strategy: join.SAOPlanned, Mode: core.Reloaded}),
			},
			Case{
				Name:  "PlannerSkew/" + inst.name + "/natural",
				Bench: lazyExecBench(inst.mk, join.Options{Strategy: join.SAONatural, Mode: core.Reloaded}),
			},
		)
	}
	// Balance series: the work-stealing executor against static sharding
	// on skewed Zipf families whose resolution mass piles onto the
	// heavy-value corner of the first SAO attribute — the regime where
	// static SAO-prefix shards leave one worker doing everything. The
	// balance column (max/mean worker resolution share; see Metrics) is
	// the series that matters: deterministic enough to gate on across
	// machine classes via `cmd/bench -gate-balance`, which requires the
	// static/stealing share ratio of each family to clear a floor. Both
	// entries run at Parallelism 4 in Reloaded mode; only StealDepth
	// differs (-1 = static seeds, 0 = default dynamic splitting).
	balanceFams := []struct {
		name string
		mk   func() *join.Query
	}{
		{"ZipfTriangle", sync.OnceValue(func() *join.Query { return workload.ZipfTriangle(3000, 12, 1.1, 7) })},
		{"ZipfStar", sync.OnceValue(func() *join.Query { return workload.ZipfStar(3, 300, 10, 1.2, 11) })},
		{"ZipfFourCycle", sync.OnceValue(func() *join.Query { return workload.ZipfFourCycle(800, 11, 1.2, 19) })},
	}
	for _, fam := range balanceFams {
		cases = append(cases,
			Case{
				Name:  "Balance/" + fam.name + "/static",
				Bench: lazyExecBench(fam.mk, join.Options{Mode: core.Reloaded, Parallelism: 4, StealDepth: -1}),
			},
			Case{
				Name:  "Balance/" + fam.name + "/stealing",
				Bench: lazyExecBench(fam.mk, join.Options{Mode: core.Reloaded, Parallelism: 4}),
			},
		)
	}
	// Recovery series: durable.Open over the same catalog image — three
	// relations, four maintained index families each — persisted three
	// ways. replay recovers from the raw WAL (re-ingest plus rebuild);
	// checkpoint loads tuple-only snapshots and rebuilds every index;
	// segment loads the frozen index slabs and builds nothing. The
	// index_builds_per_op column is deterministic (segment commits 0;
	// `cmd/bench -gate-builds` pins it), and the segment/checkpoint
	// timing ratio is the EXPERIMENTS.md rebuild-free-recovery claim.
	for _, mode := range []string{"replay", "checkpoint", "segment"} {
		cases = append(cases, Case{
			Name:  "Recovery/" + mode,
			Bench: recoveryBench(mode),
		})
	}
	// Checkpoint series: one (append → Checkpoint) iteration against a
	// ten-relation catalog. full touches every relation before the
	// checkpoint, so all ten are re-frozen; incremental touches one, so
	// nine segment files are re-referenced and the write is O(churn) —
	// the bytes/op ratio between the two entries is the incremental-
	// checkpoint claim.
	cases = append(cases,
		Case{Name: "Checkpoint/full", Bench: checkpointBench(10)},
		Case{Name: "Checkpoint/incremental", Bench: checkpointBench(1)},
	)
	return cases
}

// recoverySeed ingests the Recovery-series catalog: three relations of
// 4000 tuples over 12-bit attributes, each maintaining both B-tree
// orders plus the dyadic and k-d families.
func recoverySeed(d *durable.Catalog) error {
	rng := rand.New(rand.NewSource(99))
	for i := 1; i <= 3; i++ {
		rel := relation.MustNewUniform(fmt.Sprintf("R%d", i), []string{"X", "Y"}, 12)
		seen := map[[2]uint64]bool{}
		for len(seen) < 16000 {
			t := [2]uint64{uint64(rng.Intn(1 << 12)), uint64(rng.Intn(1 << 12))}
			if seen[t] {
				continue
			}
			seen[t] = true
			rel.MustInsert(t[0], t[1])
		}
		specs := []index.Spec{
			index.BTreeSpec("X", "Y"), index.BTreeSpec("Y", "X"),
			index.DyadicSpec(), index.KDTreeSpec(),
		}
		if _, err := d.Ingest(rel, specs...); err != nil {
			return err
		}
	}
	return nil
}

// recoveryBench measures durable.Open per op against a fixed image:
// mode replay is WAL-only, checkpoint is a tuples-only snapshot
// (DisableIndexSegments), segment is a full index-segment checkpoint.
func recoveryBench(mode string) func(b *testing.B) Metrics {
	image := sync.OnceValues(func() (*wal.MemFS, error) {
		fs := wal.NewMemFS()
		d, err := durable.Open("", durable.Options{
			FS:                   fs,
			CheckpointEvery:      -1,
			DisableIndexSegments: mode == "checkpoint",
		})
		if err != nil {
			return nil, err
		}
		if err := recoverySeed(d); err != nil {
			return nil, err
		}
		if mode != "replay" {
			if err := d.Checkpoint(); err != nil {
				return nil, err
			}
		}
		return fs, d.Close()
	})
	return func(b *testing.B) Metrics {
		fs, err := image()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var builds float64
		for i := 0; i < b.N; i++ {
			// The image copy models the files sitting on disk; it is
			// harness bookkeeping, not recovery work, so it stays off
			// the clock.
			b.StopTimer()
			img := fs.Clone()
			b.StartTimer()
			d, err := durable.Open("", durable.Options{FS: img, CheckpointEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			builds = float64(d.IndexBuilds())
			if mode == "segment" && builds != 0 {
				b.Fatalf("segment-backed recovery built %v indexes", builds)
			}
			d.Close()
		}
		return Metrics{IndexBuilds: builds}
	}
}

// checkpointBench measures one (append to `touch` relations →
// Checkpoint) iteration against a ten-relation durable catalog built
// outside the timer. touch=10 re-freezes everything per op; touch=1 is
// the O(churn) incremental path.
func checkpointBench(touch int) func(b *testing.B) Metrics {
	return func(b *testing.B) Metrics {
		fs := wal.NewMemFS()
		d, err := durable.Open("", durable.Options{FS: fs, CheckpointEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 10; i++ {
			rel := relation.MustNewUniform(fmt.Sprintf("T%d", i), []string{"X", "Y"}, 12)
			seen := map[[2]uint64]bool{}
			for len(seen) < 2000 {
				t := [2]uint64{uint64(rng.Intn(1 << 12)), uint64(rng.Intn(1 << 12))}
				if seen[t] {
					continue
				}
				seen[t] = true
				rel.MustInsert(t[0], t[1])
			}
			if _, err := d.Ingest(rel, index.BTreeSpec("X", "Y"), index.DyadicSpec()); err != nil {
				b.Fatal(err)
			}
		}
		if err := d.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < touch; j++ {
				name := fmt.Sprintf("T%d", j)
				t := relation.Tuple{uint64(rng.Intn(1 << 12)), uint64(rng.Intn(1 << 12))}
				if _, err := d.Append(name, t); err != nil {
					b.Fatal(err)
				}
			}
			if err := d.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		return Metrics{}
	}
}

// maintainedBench measures one (1-tuple Append → Execute) iteration
// against a catalog holding the Table1Acyclic relations. With patched
// set, executions go through a maintained statement primed outside the
// timer (so the loop is the steady-state refresh path and must never
// fall back to recompute); otherwise every iteration re-executes from
// scratch over the current versions, fresh indexes included.
func maintainedBench(n int, patched bool) func(b *testing.B) Metrics {
	return func(b *testing.B) Metrics {
		q := workload.PathQuery(3, n, 12, int64(n))
		cat := catalog.New()
		var atomTexts []string
		for _, a := range q.Atoms() {
			if _, err := cat.Ingest(a.Relation); err != nil {
				b.Fatal(err)
			}
			atomTexts = append(atomTexts, a.Relation.Name()+"("+strings.Join(a.Vars, ",")+")")
		}
		text := strings.Join(atomTexts, ", ")
		opts := join.Options{Mode: core.Preloaded, Parallelism: 1}

		rng := rand.New(rand.NewSource(int64(n) + 1))
		freshTuple := func() relation.Tuple {
			rel, _ := cat.Relation("R2")
			for {
				t := relation.Tuple{uint64(rng.Intn(1 << 12)), uint64(rng.Intn(1 << 12))}
				if !rel.Contains(t...) {
					return t
				}
			}
		}

		var m *catalog.Maintained
		if patched {
			var err error
			m, err = cat.Maintain(text, opts)
			if err != nil {
				b.Fatal(err)
			}
			// Prime one refresh so the unchanged-atom knowledge base and
			// the first delta layer exist before the timer starts.
			if _, err := cat.Append("R2", freshTuple()); err != nil {
				b.Fatal(err)
			}
			if _, err := m.Execute(join.Options{}); err != nil {
				b.Fatal(err)
			}
		}

		b.ResetTimer()
		var resolutions float64
		for i := 0; i < b.N; i++ {
			if _, err := cat.Append("R2", freshTuple()); err != nil {
				b.Fatal(err)
			}
			if patched {
				res, err := m.Execute(join.Options{})
				if err != nil {
					b.Fatal(err)
				}
				resolutions = float64(res.Stats.Resolutions)
				continue
			}
			cur, err := cat.Parse(text)
			if err != nil {
				b.Fatal(err)
			}
			res, err := join.Execute(cur, opts)
			if err != nil {
				b.Fatal(err)
			}
			resolutions = float64(res.Stats.Resolutions)
		}
		b.StopTimer()
		if patched && m.Recomputes() != 0 {
			b.Fatalf("maintained loop fell back to %d recomputes", m.Recomputes())
		}
		return Metrics{Resolutions: resolutions}
	}
}

// execBench builds a standard Execute-per-op benchmark body (planning
// included, as an end-to-end query costs it too). An unset Parallelism is
// pinned to 1: the canonical entries track the sequential trajectory, and
// the parallel series sets its worker count explicitly.
func execBench(q *join.Query, opts join.Options) func(b *testing.B) Metrics {
	if opts.Parallelism == 0 {
		opts.Parallelism = 1
	}
	return func(b *testing.B) Metrics {
		var m Metrics
		for i := 0; i < b.N; i++ {
			res, err := join.Execute(q, opts)
			if err != nil {
				b.Fatal(err)
			}
			m = Metrics{
				Resolutions: float64(res.Stats.Resolutions),
				Balance:     balanceOf(res.Stats),
			}
		}
		return m
	}
}

// lazyExecBench is execBench over a workload built on first use (the
// timer restarts after construction, so the build is never measured).
func lazyExecBench(mk func() *join.Query, opts join.Options) func(b *testing.B) Metrics {
	return func(b *testing.B) Metrics {
		inner := execBench(mk(), opts)
		b.ResetTimer()
		return inner(b)
	}
}

// lazyPreparedBench measures the steady-state cost of a catalog-
// prepared statement: preparation and one priming execution (which
// builds the plan's shared Preloaded base) happen outside the timer, so
// the loop is the Nth-execution hot path — zero index builds, memoized
// gap set, shared knowledge base.
func lazyPreparedBench(mk func() *join.Query, opts join.Options) func(b *testing.B) Metrics {
	return func(b *testing.B) Metrics {
		cat := catalog.New()
		p, err := cat.PrepareQuery(mk(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Execute(opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var resolutions float64
		for i := 0; i < b.N; i++ {
			res, err := p.Execute(opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.IndexBuilds != 0 {
				b.Fatalf("steady-state execution built %d indexes", res.Stats.IndexBuilds)
			}
			resolutions = float64(res.Stats.Resolutions)
		}
		return Metrics{Resolutions: resolutions}
	}
}

// RunSuite benchmarks every case whose name matches filter (nil = all)
// via testing.Benchmark and returns the report.
func RunSuite(filter *regexp.Regexp) *Report {
	rep := NewReport()
	for _, c := range Suite() {
		if filter != nil && !filter.MatchString(c.Name) {
			continue
		}
		var m Metrics
		bench := c.Bench
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			m = bench(b)
		})
		e := Entry{
			Name:             c.Name,
			N:                r.N,
			NsPerOp:          float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:      float64(r.AllocsPerOp()),
			BytesPerOp:       float64(r.AllocedBytesPerOp()),
			ResolutionsPerOp: m.Resolutions,
			IndexBuildsPerOp: m.IndexBuilds,
			Balance:          m.Balance,
		}
		stamp(&e)
		rep.Set(e)
	}
	return rep
}
