package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Idempotent registration returns the same instrument.
	if r.Counter("c_total", "a counter") != c {
		t.Fatal("re-registration minted a new counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 100 observations at ~1ms, 10 at ~100ms, 1 at ~10s.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	h.Observe(10 * time.Second)
	if h.Count() != 111 {
		t.Fatalf("count = %d, want 111", h.Count())
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if p50 < 0.0005 || p50 > 0.002 {
		t.Errorf("p50 = %g, want ~1ms", p50)
	}
	if p95 < 0.0005 || p95 > 0.2 {
		t.Errorf("p95 = %g, want <= ~100ms", p95)
	}
	if p99 < 0.05 || p99 > 0.2 {
		t.Errorf("p99 = %g, want ~100ms bucket", p99)
	}
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotone: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", q)
	}
	h.Observe(0)             // sub-microsecond lands in the first bucket
	h.Observe(2 * time.Hour) // beyond the last finite bucket: clamps
	if q := h.Quantile(0.99); q != bucketUpperSeconds(histFiniteBuckets-1) {
		t.Errorf("overflow quantile = %g, want clamp to %g", q, bucketUpperSeconds(histFiniteBuckets-1))
	}
}

func TestPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("tetris_test_total", "things").Add(3)
	r.Gauge("tetris_depth", "queue depth").Set(2)
	r.GaugeFunc("tetris_fn", "computed", func() float64 { return 1.5 })
	r.CounterFunc("tetris_cfn_total", "computed counter", func() float64 { return 9 })
	v := r.HistogramVec("tetris_lat_seconds", "latency", "shape", "kind")
	v.With(`R(A,B),S(B,C)`, "exec").Observe(3 * time.Millisecond)
	v.With(`R(A,B),S(B,C)`, "exec").Observe(5 * time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE tetris_test_total counter",
		"tetris_test_total 3",
		"tetris_depth 2",
		"tetris_fn 1.5",
		"tetris_cfn_total 9",
		"# TYPE tetris_lat_seconds histogram",
		`tetris_lat_seconds_bucket{shape="R(A,B),S(B,C)",kind="exec",le="+Inf"} 2`,
		`tetris_lat_seconds_count{shape="R(A,B),S(B,C)",kind="exec"} 2`,
		`tetris_lat_seconds_quantile{shape="R(A,B),S(B,C)",kind="exec",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets: the le="+Inf" count equals _count, and some
	// finite bucket already holds both observations (5ms < 8192µs).
	if !strings.Contains(out, `le="0.008192"} 2`) {
		t.Errorf("cumulative 8ms bucket missing:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("esc_seconds", "", "shape")
	v.With("we\"ird\\label\nx").Observe(time.Millisecond)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `shape="we\"ird\\label\nx"`) {
		t.Errorf("label not escaped:\n%s", sb.String())
	}
}

func TestVecCardinalityCap(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("cap_seconds", "", "shape")
	for i := 0; i < maxChildren+50; i++ {
		v.With(fmt.Sprintf("shape-%d", i)).Observe(time.Millisecond)
	}
	// Overflow shares one "other" child.
	n := int64(0)
	v.children.Range(func(_, _ any) bool { n++; return true })
	if n > maxChildren+1 {
		t.Fatalf("vector grew to %d children, cap is %d + other", n, maxChildren)
	}
	if got := v.With("brand-new-shape"); got != v.With("another-brand-new") {
		t.Fatal("overflow shapes did not collapse into the shared child")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `shape="other"`) {
		t.Errorf("no overflow series in output")
	}
}

func TestVecConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("conc_seconds", "", "op")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.With(fmt.Sprintf("op%d", w%4)).Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	v.children.Range(func(_, c any) bool {
		total += c.(*histChild).hist.Count()
		return true
	})
	if total != 8000 {
		t.Fatalf("lost observations: %d, want 8000", total)
	}
}
