package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds named instruments and renders them in the Prometheus
// text exposition format (version 0.0.4). Registration is idempotent by
// name; rendering preserves registration order so scrapes are stable.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

type familyKind int

const (
	counterFamily familyKind = iota
	gaugeFamily
	counterFuncFamily
	gaugeFuncFamily
	histogramFamily
)

type family struct {
	name, help string
	kind       familyKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	vec     *HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// get returns the family under the name, creating it with mk on first
// registration. A name re-registered with a different kind panics: two
// call sites disagreeing on what a metric is can only be a bug.
func (r *Registry) get(name, help string, kind familyKind, mk func() *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic("metrics: " + name + " re-registered with a different kind")
		}
		return f
	}
	f := mk()
	f.name, f.help, f.kind = name, help, kind
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.get(name, help, counterFamily, func() *family { return &family{counter: &Counter{}} }).counter
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.get(name, help, gaugeFamily, func() *family { return &family{gauge: &Gauge{}} }).gauge
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the shape for counters already tracked elsewhere (catalog
// stats, WAL position) that the registry should expose without double
// accounting.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.get(name, help, counterFuncFamily, func() *family { return &family{fn: fn} })
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.get(name, help, gaugeFuncFamily, func() *family { return &family{fn: fn} })
}

// HistogramVec registers (or returns) a labelled histogram family.
// Call With(values...) on the result to observe.
func (r *Registry) HistogramVec(name, help string, labelNames ...string) *HistogramVec {
	return r.get(name, help, histogramFamily, func() *family {
		return &family{vec: &HistogramVec{name: name, labelNames: labelNames}}
	}).vec
}

// quantiles are the percentiles exported per histogram series.
var quantiles = []float64{0.5, 0.95, 0.99}

// WritePrometheus renders every registered family. Histogram vectors
// emit the standard cumulative _bucket/_sum/_count series per child,
// plus a companion "<name>_quantile" gauge family carrying estimated
// p50/p95/p99 — precomputed server-side so dashboards without a PromQL
// engine (and the CI smoke) can read latency directly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()

	var sb strings.Builder
	for _, f := range fams {
		switch f.kind {
		case counterFamily:
			header(&sb, f.name, f.help, "counter")
			fmt.Fprintf(&sb, "%s %d\n", f.name, f.counter.Value())
		case gaugeFamily:
			header(&sb, f.name, f.help, "gauge")
			fmt.Fprintf(&sb, "%s %d\n", f.name, f.gauge.Value())
		case counterFuncFamily:
			header(&sb, f.name, f.help, "counter")
			fmt.Fprintf(&sb, "%s %s\n", f.name, formatFloat(f.fn()))
		case gaugeFuncFamily:
			header(&sb, f.name, f.help, "gauge")
			fmt.Fprintf(&sb, "%s %s\n", f.name, formatFloat(f.fn()))
		case histogramFamily:
			writeHistogramVec(&sb, f)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeHistogramVec renders one labelled histogram family and its
// quantile companion.
func writeHistogramVec(sb *strings.Builder, f *family) {
	children := make([]*histChild, 0, 8)
	f.vec.children.Range(func(_, v any) bool {
		children = append(children, v.(*histChild))
		return true
	})
	sort.Slice(children, func(i, j int) bool {
		return joinKey(children[i].values) < joinKey(children[j].values)
	})

	header(sb, f.name, f.help, "histogram")
	for _, c := range children {
		labels := labelString(f.vec.labelNames, c.values, "")
		counts, total := c.hist.snapshot()
		var cum int64
		for i := 0; i <= histFiniteBuckets; i++ {
			cum += counts[i]
			le := "+Inf"
			if i < histFiniteBuckets {
				le = formatFloat(bucketUpperSeconds(i))
			}
			fmt.Fprintf(sb, "%s_bucket{%sle=\"%s\"} %d\n", f.name, labels, le, cum)
		}
		fmt.Fprintf(sb, "%s_sum%s %s\n", f.name, braced(labels), formatFloat(c.hist.Sum()))
		fmt.Fprintf(sb, "%s_count%s %d\n", f.name, braced(labels), total)
	}

	qname := f.name + "_quantile"
	header(sb, qname, "Estimated quantiles of "+f.name+".", "gauge")
	for _, c := range children {
		if c.hist.Count() == 0 {
			continue
		}
		for _, q := range quantiles {
			labels := labelString(f.vec.labelNames, c.values, strconv.FormatFloat(q, 'g', -1, 64))
			fmt.Fprintf(sb, "%s%s %s\n", qname, braced(labels), formatFloat(c.hist.Quantile(q)))
		}
	}
}

// labelString renders `name="value",` pairs (trailing comma kept so a
// le/quantile label can append); quantile, when non-empty, is added as
// a quantile label.
func labelString(names, values []string, quantile string) string {
	var sb strings.Builder
	for i, n := range names {
		fmt.Fprintf(&sb, "%s=\"%s\",", n, escapeLabel(values[i]))
	}
	if quantile != "" {
		fmt.Fprintf(&sb, "quantile=\"%s\",", quantile)
	}
	return sb.String()
}

// braced wraps a labelString result in {} for a standalone sample line,
// rendering a label-free series bare (no empty "{}" pair).
func braced(labels string) string {
	labels = strings.TrimSuffix(labels, ",")
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func header(sb *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(sb, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
	}
	fmt.Fprintf(sb, "# TYPE %s %s\n", name, typ)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
