// Package metrics is the engine's telemetry substrate: lock-cheap
// counters, gauges and log-scaled latency histograms, collected in a
// registry that renders the Prometheus text exposition format.
//
// Everything on the hot path is a single atomic add — no locks, no
// allocation — so instruments can sit inside session dispatch, the
// admission queue and the catalog's execute paths without perturbing
// what they measure. Labelled families (histogram vectors keyed by
// query shape and operation) resolve their child through one lock-free
// map read after the first observation; label cardinality is bounded so
// a client sending unbounded distinct query shapes cannot grow server
// memory without bound (overflow collapses into an "other" series).
//
// Histogram buckets are powers of two in microseconds from 1µs to
// ~67s (27 finite buckets plus +Inf): multiplicative resolution, which
// is what latency distributions need — p99 of a 100µs query and p99 of
// a 10s analytical scan both land in well-resolved buckets. Quantiles
// (p50/p95/p99) are estimated by linear interpolation inside the
// bucket, accurate to the bucket's factor-of-two width.
package metrics

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus counter contract).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histFiniteBuckets is the number of finite histogram buckets: bucket i
// holds observations <= 2^i microseconds, i in [0, histFiniteBuckets);
// one more bucket catches +Inf.
const histFiniteBuckets = 27

// bucketUpperSeconds returns the upper bound of finite bucket i in
// seconds.
func bucketUpperSeconds(i int) float64 {
	return float64(uint64(1)<<uint(i)) / 1e6
}

// Histogram is a log2-bucketed latency histogram. All mutation is
// atomic; Observe is one add to a bucket, one to the sum and one to the
// count.
type Histogram struct {
	buckets [histFiniteBuckets + 1]atomic.Int64
	sumNs   atomic.Int64
	count   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	idx := 0
	if us > 1 {
		idx = bits.Len64(us - 1) // ceil(log2(us))
	}
	if idx > histFiniteBuckets {
		idx = histFiniteBuckets // +Inf
	}
	h.buckets[idx].Add(1)
	h.sumNs.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// snapshot copies the bucket counts coherently enough for rendering
// (individual loads are atomic; cross-bucket skew of a scrape racing
// observations is inherent to the format).
func (h *Histogram) snapshot() (counts [histFiniteBuckets + 1]int64, total int64) {
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return counts, total
}

// Quantile estimates the q-quantile (0 < q < 1) in seconds by linear
// interpolation within the holding bucket. Returns 0 with no
// observations; observations in the +Inf bucket clamp to the largest
// finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	counts, total := h.snapshot()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= histFiniteBuckets {
			return bucketUpperSeconds(histFiniteBuckets - 1)
		}
		lo := 0.0
		if i > 0 {
			lo = bucketUpperSeconds(i - 1)
		}
		hi := bucketUpperSeconds(i)
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return bucketUpperSeconds(histFiniteBuckets - 1)
}

// maxChildren bounds a vector's label cardinality. The 257th distinct
// label combination — and every one after it — shares one "other"
// child, so an adversarial client cannot grow the registry without
// bound.
const maxChildren = 256

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct {
	name, help string
	labelNames []string

	children sync.Map // joined label key -> *histChild
	nKids    atomic.Int64
	overflow atomic.Pointer[histChild]
}

type histChild struct {
	values []string
	hist   Histogram
}

// With returns the child histogram for the given label values (one per
// declared label name), creating it on first use. Past the cardinality
// cap every new combination shares the "other" child.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labelNames) {
		panic("metrics: label value count mismatch for " + v.name)
	}
	key := joinKey(values)
	if c, ok := v.children.Load(key); ok {
		return &c.(*histChild).hist
	}
	if v.nKids.Load() >= maxChildren {
		return v.otherChild()
	}
	child := &histChild{values: append([]string(nil), values...)}
	if actual, loaded := v.children.LoadOrStore(key, child); loaded {
		return &actual.(*histChild).hist
	}
	v.nKids.Add(1)
	return &child.hist
}

// otherChild lazily creates the shared overflow series: every label set
// to "other".
func (v *HistogramVec) otherChild() *Histogram {
	if c := v.overflow.Load(); c != nil {
		return &c.hist
	}
	values := make([]string, len(v.labelNames))
	for i := range values {
		values[i] = "other"
	}
	child := &histChild{values: values}
	if v.overflow.CompareAndSwap(nil, child) {
		v.children.Store(joinKey(values)+"\x00other", child)
	}
	return &v.overflow.Load().hist
}

// joinKey builds the child map key from label values.
func joinKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := 0
	for _, s := range values {
		n += len(s) + 1
	}
	b := make([]byte, 0, n)
	for i, s := range values {
		if i > 0 {
			b = append(b, 0)
		}
		b = append(b, s...)
	}
	return string(b)
}
