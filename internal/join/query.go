// Package join reduces natural join queries to the box cover problem and
// runs Tetris over them (Proposition 3.6 of the paper). It assembles a
// query-wide gap box oracle from per-relation indices (extending each gap
// box with wildcards to the full attribute set, Section 3.3), chooses the
// splitting attribute order prescribed by the paper's theorems, and
// decodes the BCP output back into result tuples.
package join

import (
	"fmt"
	"strings"

	"tetrisjoin/internal/hypergraph"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/relation"
)

// Atom is one occurrence of a relation in a query, binding query
// variables to the relation's attributes positionally.
type Atom struct {
	// Relation is the relation instance.
	Relation *relation.Relation
	// Vars are the query variables bound to the relation's attributes, in
	// schema order. They must be distinct within the atom.
	Vars []string
	// Indexes are the indices available on the relation for this query.
	// When empty, the engine builds a B-tree index consistent with the
	// chosen global attribute order (the paper's GAO-consistency default).
	Indexes []index.Index
}

// Query is a natural join query ⨝_R atoms.
type Query struct {
	atoms  []Atom
	vars   []string
	depths []uint8
	varPos map[string]int
}

// NewQuery validates and assembles a query. Variables shared between
// atoms must agree on their attribute depths.
func NewQuery(atoms ...Atom) (*Query, error) {
	if len(atoms) == 0 {
		return nil, fmt.Errorf("join: query has no atoms")
	}
	q := &Query{atoms: atoms, varPos: map[string]int{}}
	for ai, a := range atoms {
		if a.Relation == nil {
			return nil, fmt.Errorf("join: atom %d has no relation", ai)
		}
		if len(a.Vars) != a.Relation.Arity() {
			return nil, fmt.Errorf("join: atom %d binds %d variables, relation %s has arity %d",
				ai, len(a.Vars), a.Relation.Name(), a.Relation.Arity())
		}
		seen := map[string]bool{}
		for i, v := range a.Vars {
			if v == "" {
				return nil, fmt.Errorf("join: atom %d has an empty variable name", ai)
			}
			if seen[v] {
				return nil, fmt.Errorf("join: atom %d repeats variable %s", ai, v)
			}
			seen[v] = true
			d := a.Relation.Depths()[i]
			if pos, ok := q.varPos[v]; ok {
				if q.depths[pos] != d {
					return nil, fmt.Errorf("join: variable %s has depth %d in %s but %d elsewhere",
						v, d, a.Relation.Name(), q.depths[pos])
				}
			} else {
				q.varPos[v] = len(q.vars)
				q.vars = append(q.vars, v)
				q.depths = append(q.depths, d)
			}
		}
		for _, ix := range a.Indexes {
			if ix.Relation() != a.Relation {
				return nil, fmt.Errorf("join: atom %d carries an index over a different relation", ai)
			}
		}
	}
	return q, nil
}

// MustNewQuery is NewQuery that panics on error.
func MustNewQuery(atoms ...Atom) *Query {
	q, err := NewQuery(atoms...)
	if err != nil {
		panic(err)
	}
	return q
}

// Atoms returns the query's atoms.
func (q *Query) Atoms() []Atom { return q.atoms }

// Vars returns the query variables in first-occurrence order.
func (q *Query) Vars() []string { return q.vars }

// Depths returns the per-variable bit depths.
func (q *Query) Depths() []uint8 { return q.depths }

// VarIndex returns the position of a variable, or -1.
func (q *Query) VarIndex(v string) int {
	if pos, ok := q.varPos[v]; ok {
		return pos
	}
	return -1
}

// Hypergraph returns the query hypergraph: vertices are variables, one
// edge per atom.
func (q *Query) Hypergraph() *hypergraph.Hypergraph {
	h := hypergraph.NewNamed(q.vars)
	for _, a := range q.atoms {
		verts := make([]int, len(a.Vars))
		for i, v := range a.Vars {
			verts[i] = q.varPos[v]
		}
		h.MustAddEdge(verts...)
	}
	return h
}

// String renders the query as R(A,B) ⋈ S(B,C) ….
func (q *Query) String() string {
	parts := make([]string, len(q.atoms))
	for i, a := range q.atoms {
		parts[i] = a.Relation.Name() + "(" + strings.Join(a.Vars, ",") + ")"
	}
	return strings.Join(parts, " ⋈ ")
}

// Parse builds a query from a textual form like "R(A,B), S(B,C), T(A,C)",
// resolving relation names through the given catalog. A relation may
// appear several times (self-joins) with different variable bindings.
func Parse(s string, catalog map[string]*relation.Relation) (*Query, error) {
	var atoms []Atom
	rest := strings.TrimSpace(s)
	for len(rest) > 0 {
		open := strings.IndexByte(rest, '(')
		if open < 0 {
			return nil, fmt.Errorf("join: expected '(' in %q", rest)
		}
		name := strings.TrimSpace(rest[:open])
		closeIdx := strings.IndexByte(rest, ')')
		if closeIdx < open {
			return nil, fmt.Errorf("join: unbalanced parentheses in %q", rest)
		}
		rel, ok := catalog[name]
		if !ok {
			return nil, fmt.Errorf("join: unknown relation %q", name)
		}
		var vars []string
		for _, v := range strings.Split(rest[open+1:closeIdx], ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return nil, fmt.Errorf("join: empty variable in atom %s", name)
			}
			vars = append(vars, v)
		}
		atoms = append(atoms, Atom{Relation: rel, Vars: vars})
		rest = strings.TrimSpace(rest[closeIdx+1:])
		rest = strings.TrimPrefix(rest, ",")
		rest = strings.TrimSpace(rest)
	}
	return NewQuery(atoms...)
}
