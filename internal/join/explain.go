package join

import (
	"fmt"
	"strings"

	"tetrisjoin/internal/agm"
)

// Explanation describes how the engine would evaluate a query: the
// chosen splitting attribute order, the per-atom indices, and the
// structural measures that determine which of the paper's runtime
// guarantees apply.
type Explanation struct {
	// Query is the rendered query text.
	Query string
	// Vars are the query variables in output order.
	Vars []string
	// SAO is the splitting attribute order that will be used.
	SAO []string
	// Indices describes the index used for each atom, parallel to the
	// query's atoms.
	Indices []string
	// Acyclic reports α-acyclicity (the Õ(N+Z) regime of Theorem D.8).
	Acyclic bool
	// Treewidth is the query hypergraph's treewidth: Theorem 4.7 applies
	// at 1 and Theorem 4.9 at w>1 for certificate bounds.
	Treewidth int
	// FHTW is the fractional hypertree width: the Õ(N^fhtw+Z) exponent of
	// Theorem 4.6. FHTWExact is false when FHTW is a heuristic upper
	// bound (more than 8 variables).
	FHTW      float64
	FHTWExact bool
	// AGM is the per-instance AGM output bound of Definition A.1.
	AGM float64
	// Guarantee summarizes the tightest applicable runtime statement.
	Guarantee string
	// Planned reports that the statistics-driven planner chose the SAO
	// and index families; when set, EstimatedResolutions carries its
	// cost-model estimate and Candidates the scored orders it weighed
	// (winner first, with rejection reasons on the losers).
	Planned              bool
	EstimatedResolutions float64
	Candidates           []PlannedCandidate
}

// Explain computes the evaluation plan and structural measures for the
// query under the given options, without running it.
func Explain(q *Query, opts Options) (*Explanation, error) {
	d, err := Decide(q, opts)
	if err != nil {
		return nil, err
	}
	indices, _, err := buildIndices(q, d, NewIndexBuilder())
	if err != nil {
		return nil, err
	}
	ex := &Explanation{
		Query:                q.String(),
		Vars:                 append([]string(nil), q.Vars()...),
		SAO:                  append([]string(nil), d.SAOVars...),
		Planned:              d.Planned,
		EstimatedResolutions: d.EstimatedResolutions,
		Candidates:           d.Candidates,
	}
	for _, ix := range indices {
		ex.Indices = append(ex.Indices, ix.Relation().Name()+": "+ix.Kind())
	}
	h := q.Hypergraph()
	ex.Acyclic = h.AlphaAcyclic()
	tw, _, err := h.Treewidth()
	if err != nil {
		return nil, fmt.Errorf("join: %w", err)
	}
	ex.Treewidth = tw
	ex.FHTW, ex.FHTWExact, err = agm.FHTW(h)
	if err != nil {
		return nil, fmt.Errorf("join: %w", err)
	}
	sizes := make([]int, len(q.atoms))
	for i, a := range q.atoms {
		sizes[i] = a.Relation.Len()
	}
	ex.AGM, err = agm.Bound(h, sizes)
	if err != nil {
		return nil, fmt.Errorf("join: %w", err)
	}
	switch {
	case ex.Acyclic:
		ex.Guarantee = "α-acyclic: Õ(N+Z) preloaded (Thm D.8); Õ(|C|+Z) reloaded when treewidth 1 (Thm 4.7)"
	case ex.Treewidth == 1:
		ex.Guarantee = "treewidth 1: Õ(|C|+Z) reloaded (Thm 4.7)"
	default:
		ex.Guarantee = fmt.Sprintf(
			"Õ(N^%.2f+Z) preloaded (Thm 4.6); Õ(|C|^%d+Z) reloaded (Thm 4.9); Õ(|C|^{n/2}+Z) load-balanced (Thm 4.11)",
			ex.FHTW, ex.Treewidth+1)
	}
	return ex, nil
}

// String renders the explanation as a short report.
func (ex *Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "query:     %s\n", ex.Query)
	fmt.Fprintf(&sb, "variables: %s\n", strings.Join(ex.Vars, ", "))
	fmt.Fprintf(&sb, "SAO:       %s\n", strings.Join(ex.SAO, ", "))
	for _, ix := range ex.Indices {
		fmt.Fprintf(&sb, "index:     %s\n", ix)
	}
	fmt.Fprintf(&sb, "acyclic:   %v   treewidth: %d   fhtw: %.2f", ex.Acyclic, ex.Treewidth, ex.FHTW)
	if !ex.FHTWExact {
		sb.WriteString(" (heuristic)")
	}
	fmt.Fprintf(&sb, "\nAGM bound: %.1f tuples\n", ex.AGM)
	fmt.Fprintf(&sb, "guarantee: %s\n", ex.Guarantee)
	if ex.Planned {
		fmt.Fprintf(&sb, "planner:   est. resolutions %.3g\n", ex.EstimatedResolutions)
		for _, c := range ex.Candidates {
			obs := ""
			if c.Observed {
				obs = " (observed)"
			}
			why := "chosen"
			if c.Rejection != "" {
				why = "rejected: " + c.Rejection
			}
			fmt.Fprintf(&sb, "  %-12s %-20s %.3g%s — %s\n",
				c.Source, strings.Join(c.SAOVars, ","), c.Score, obs, why)
		}
	}
	return sb.String()
}
