package join

import (
	"math"
	"strings"
	"testing"

	"tetrisjoin/internal/relation"
)

func TestExplainTriangle(t *testing.T) {
	r := relation.MustNewUniform("R", []string{"X", "Y"}, 4)
	for i := uint64(0); i < 9; i++ {
		r.MustInsert(i, (i+1)%9)
	}
	q := MustNewQuery(
		Atom{Relation: r, Vars: []string{"A", "B"}},
		Atom{Relation: r, Vars: []string{"B", "C"}},
		Atom{Relation: r, Vars: []string{"A", "C"}},
	)
	ex, err := Explain(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Acyclic {
		t.Error("triangle reported acyclic")
	}
	if ex.Treewidth != 2 {
		t.Errorf("treewidth = %d", ex.Treewidth)
	}
	if !ex.FHTWExact || math.Abs(ex.FHTW-1.5) > 1e-9 {
		t.Errorf("fhtw = %g (exact %v)", ex.FHTW, ex.FHTWExact)
	}
	if math.Abs(ex.AGM-27) > 1e-6 {
		t.Errorf("AGM = %g, want 27", ex.AGM)
	}
	if len(ex.SAO) != 3 || len(ex.Indices) != 3 {
		t.Errorf("SAO %v indices %v", ex.SAO, ex.Indices)
	}
	s := ex.String()
	for _, want := range []string{"treewidth: 2", "fhtw: 1.50", "AGM bound: 27.0", "Thm 4.6"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestExplainAcyclicAndErrors(t *testing.T) {
	r := relation.MustNewUniform("R", []string{"X", "Y"}, 3)
	r.MustInsert(1, 2)
	q := MustNewQuery(
		Atom{Relation: r, Vars: []string{"A", "B"}},
		Atom{Relation: r, Vars: []string{"B", "C"}},
	)
	ex, err := Explain(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Acyclic || ex.Treewidth != 1 {
		t.Errorf("path query: acyclic=%v tw=%d", ex.Acyclic, ex.Treewidth)
	}
	if !strings.Contains(ex.Guarantee, "α-acyclic") {
		t.Errorf("guarantee = %q", ex.Guarantee)
	}
	if _, err := Explain(q, Options{SAOVars: []string{"A"}}); err == nil {
		t.Error("bad SAO accepted")
	}
}
