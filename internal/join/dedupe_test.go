package join

import (
	"testing"

	"tetrisjoin/internal/relation"
)

// TestSelfJoinIndexDedupe pins the (relation, attribute order) index
// dedupe: a triangle self-join R(A,B), R(B,C), R(A,C) under the natural
// SAO needs the same schema-order index for all three atoms, so exactly
// one index must be built and shared, where the pre-registry planner
// built three identical ones.
func TestSelfJoinIndexDedupe(t *testing.T) {
	r := relation.MustNewUniform("R", []string{"x", "y"}, 4)
	r.MustInsert(1, 2)
	r.MustInsert(2, 3)
	r.MustInsert(1, 3)
	r.MustInsert(3, 4)

	q, err := NewQuery(
		Atom{Relation: r, Vars: []string{"A", "B"}},
		Atom{Relation: r, Vars: []string{"B", "C"}},
		Atom{Relation: r, Vars: []string{"A", "C"}},
	)
	if err != nil {
		t.Fatal(err)
	}

	p, err := NewPlan(q, Options{SAOVars: []string{"A", "B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	// Under SAO (A,B,C) every atom's variables are already SAO-ranked in
	// schema order, so all three atoms need btree(x,y): one build.
	if p.IndexBuilds() != 1 {
		t.Errorf("IndexBuilds = %d, want 1 (three atoms share one (relation, order) index)", p.IndexBuilds())
	}
	ix := p.Indices()
	if ix[0] != ix[1] || ix[0] != ix[2] {
		t.Errorf("atoms did not share the index: %p %p %p", ix[0], ix[1], ix[2])
	}

	res, err := p.Execute(Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0][0] != 1 || res.Tuples[0][1] != 2 || res.Tuples[0][2] != 3 {
		t.Errorf("triangle output = %v, want [[1 2 3]]", res.Tuples)
	}

	// A mirrored self-join R(A,B), R(B,A) needs opposite orders: two
	// distinct indexes, no false sharing.
	q2, err := NewQuery(
		Atom{Relation: r, Vars: []string{"A", "B"}},
		Atom{Relation: r, Vars: []string{"B", "A"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlan(q2, Options{SAOVars: []string{"A", "B"}})
	if err != nil {
		t.Fatal(err)
	}
	if p2.IndexBuilds() != 2 {
		t.Errorf("mirrored self-join IndexBuilds = %d, want 2 (orders differ)", p2.IndexBuilds())
	}
	if p2.Indices()[0] == p2.Indices()[1] {
		t.Error("mirrored self-join shared one index across different orders")
	}

	// The one-shot path charges the builds to the execution that planned.
	res2, err := Execute(q, Options{SAOVars: []string{"A", "B", "C"}, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.IndexBuilds != 1 {
		t.Errorf("one-shot Execute Stats.IndexBuilds = %d, want 1", res2.Stats.IndexBuilds)
	}
}
