package join

import (
	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/index"
)

// atomBinding pairs an index with the mapping from relation attribute
// positions to query variable positions.
type atomBinding struct {
	ix     index.Index
	relPos []int // relation position i holds query variable relPos[i]
}

// Oracle is the query-wide gap box oracle: the union over atoms of the
// per-relation index gaps, extended with λ wildcards to the query's full
// attribute set (the set B(Q) of Section 3.4).
//
// GapsContaining is the oracle's hot path — it runs once per probe of the
// outer Tetris loop — so it reuses per-Oracle scratch (projection buffer,
// extension arena, output slice, dedup tree) and performs zero steady-
// state allocations. Its results are valid only until the next
// GapsContaining call; core.Run consumes them immediately, and callers
// that retain boxes (e.g. the LB rebuild set) must Clone them. AllGaps
// results are freshly allocated and caller-owned.
type Oracle struct {
	depths   []uint8
	bindings []atomBinding

	proj []uint64          // projected probe point, reused
	ext  []dyadic.Interval // arena for extended gap boxes, reused
	out  []dyadic.Box      // result slice, reused
	seen *boxtree.Tree     // per-call dedup set, Reset each probe
}

// NewOracle assembles the oracle for a query with the given per-atom
// indices (parallel to q.Atoms(); each entry must be non-nil).
func NewOracle(q *Query, indices []index.Index) *Oracle {
	o := &Oracle{depths: q.Depths(), seen: boxtree.New(len(q.Depths()))}
	maxArity := 0
	for ai, a := range q.atoms {
		relPos := make([]int, len(a.Vars))
		for i, v := range a.Vars {
			relPos[i] = q.varPos[v]
		}
		if len(relPos) > maxArity {
			maxArity = len(relPos)
		}
		o.bindings = append(o.bindings, atomBinding{ix: indices[ai], relPos: relPos})
	}
	o.proj = make([]uint64, maxArity)
	return o
}

// Dims implements core.Oracle.
func (o *Oracle) Dims() int { return len(o.depths) }

// Depths implements core.Oracle.
func (o *Oracle) Depths() []uint8 { return o.depths }

// extendInto lifts a relation-space box into the n-dimensional query-space
// slot out (which must be zeroed to λ outside the binding's positions).
func (b atomBinding) extendInto(out dyadic.Box, rb dyadic.Box) {
	for i, pos := range b.relPos {
		out[pos] = rb[i]
	}
}

// GapsContaining implements core.Oracle: each atom's index is probed with
// the projected point; its gap boxes, extended to query space, all
// contain the probe point. The result is empty exactly when the point's
// projection is a tuple of every relation — i.e. the point is an output
// tuple. The returned boxes are valid until the next call.
func (o *Oracle) GapsContaining(point []uint64) []dyadic.Box {
	n := len(o.depths)
	o.ext = o.ext[:0]
	o.out = o.out[:0]
	o.seen.Reset()
	for _, b := range o.bindings {
		proj := o.proj[:len(b.relPos)]
		for i, pos := range b.relPos {
			proj[i] = point[pos]
		}
		for _, g := range b.ix.GapsAt(proj) {
			mark := len(o.ext)
			o.ext = dyadic.AppendLambdas(o.ext, n)
			eb := dyadic.Box(o.ext[mark : mark+n])
			b.extendInto(eb, g)
			if o.seen.Insert(eb) {
				o.out = append(o.out, eb)
			} else {
				o.ext = o.ext[:mark] // duplicate: reclaim the slot
			}
		}
	}
	return o.out
}

// AllGaps implements core.Oracle: the full set B(Q) of gap boxes from
// every index, extended to query space. The boxes are carved from a fresh
// arena per call (so the whole set costs O(log) allocations) and are
// caller-owned: they stay valid indefinitely.
func (o *Oracle) AllGaps() []dyadic.Box {
	var out []dyadic.Box
	var arena []dyadic.Interval
	n := len(o.depths)
	seen := boxtree.New(n)
	for _, b := range o.bindings {
		for _, g := range b.ix.AllGaps() {
			mark := len(arena)
			arena = dyadic.AppendLambdas(arena, n)
			eb := dyadic.Box(arena[mark : mark+n])
			b.extendInto(eb, g)
			if seen.Insert(eb) {
				out = append(out, eb)
			} else {
				arena = arena[:mark]
			}
		}
	}
	return out
}
