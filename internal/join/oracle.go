package join

import (
	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/index"
)

// atomBinding pairs an index with the mapping from relation attribute
// positions to query variable positions.
type atomBinding struct {
	ix     index.Index
	relPos []int // relation position i holds query variable relPos[i]
}

// Oracle is the query-wide gap box oracle: the union over atoms of the
// per-relation index gaps, extended with λ wildcards to the query's full
// attribute set (the set B(Q) of Section 3.4).
type Oracle struct {
	depths   []uint8
	bindings []atomBinding
}

// NewOracle assembles the oracle for a query with the given per-atom
// indices (parallel to q.Atoms(); each entry must be non-nil).
func NewOracle(q *Query, indices []index.Index) *Oracle {
	o := &Oracle{depths: q.Depths()}
	for ai, a := range q.atoms {
		relPos := make([]int, len(a.Vars))
		for i, v := range a.Vars {
			relPos[i] = q.varPos[v]
		}
		o.bindings = append(o.bindings, atomBinding{ix: indices[ai], relPos: relPos})
	}
	return o
}

// Dims implements core.Oracle.
func (o *Oracle) Dims() int { return len(o.depths) }

// Depths implements core.Oracle.
func (o *Oracle) Depths() []uint8 { return o.depths }

// extend lifts a relation-space box into query space.
func (b atomBinding) extend(n int, rb dyadic.Box) dyadic.Box {
	out := make(dyadic.Box, n)
	for i, pos := range b.relPos {
		out[pos] = rb[i]
	}
	return out
}

// GapsContaining implements core.Oracle: each atom's index is probed with
// the projected point; its gap boxes, extended to query space, all
// contain the probe point. The result is empty exactly when the point's
// projection is a tuple of every relation — i.e. the point is an output
// tuple.
func (o *Oracle) GapsContaining(point []uint64) []dyadic.Box {
	var out []dyadic.Box
	seen := map[string]bool{}
	n := len(o.depths)
	for _, b := range o.bindings {
		proj := make([]uint64, len(b.relPos))
		for i, pos := range b.relPos {
			proj[i] = point[pos]
		}
		for _, g := range b.ix.GapsAt(proj) {
			eb := b.extend(n, g)
			if k := eb.Key(); !seen[k] {
				seen[k] = true
				out = append(out, eb)
			}
		}
	}
	return out
}

// AllGaps implements core.Oracle: the full set B(Q) of gap boxes from
// every index, extended to query space.
func (o *Oracle) AllGaps() []dyadic.Box {
	var out []dyadic.Box
	seen := map[string]bool{}
	n := len(o.depths)
	for _, b := range o.bindings {
		for _, g := range b.ix.AllGaps() {
			eb := b.extend(n, g)
			if k := eb.Key(); !seen[k] {
				seen[k] = true
				out = append(out, eb)
			}
		}
	}
	return out
}
