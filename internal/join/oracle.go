package join

import (
	"tetrisjoin/internal/boxtree"
	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/index"
)

// atomBinding pairs an index with the mapping from relation attribute
// positions to query variable positions.
type atomBinding struct {
	ix     index.Index
	relPos []int // relation position i holds query variable relPos[i]
}

// Oracle is the query-wide gap box oracle: the union over atoms of the
// per-relation index gaps, extended with λ wildcards to the query's full
// attribute set (the set B(Q) of Section 3.4).
//
// An Oracle is a per-worker prober: the indices it probes are immutable
// and shared (between oracles of the same Plan and with every other
// reader), while the oracle owns the mutable probe state — one index
// cursor per atom plus projection/extension/dedup scratch. Use one oracle
// per goroutine; Plan.NewOracle mints them cheaply.
//
// GapsContaining is the oracle's hot path — it runs once per probe of the
// outer Tetris loop — so it reuses that per-oracle scratch and performs
// zero steady-state allocations. Its results are valid only until the
// next GapsContaining call on the same oracle; the core engine consumes
// them immediately, and callers that retain boxes (e.g. the LB rebuild
// set) must Clone them. AllGaps results are shared and read-only for
// plan-backed oracles, freshly allocated otherwise.
type Oracle struct {
	depths   []uint8
	bindings []atomBinding
	cursors  []index.Cursor
	allGaps  func() []dyadic.Box

	proj []uint64          // projected probe point, reused
	ext  []dyadic.Interval // arena for extended gap boxes, reused
	out  []dyadic.Box      // result slice, reused
	seen *boxtree.Tree     // per-call dedup set, Reset each probe
}

// NewOracle assembles a standalone oracle for a query with the given
// per-atom indices (parallel to q.Atoms(); each entry must be non-nil).
// Queries executed repeatedly or in parallel should prepare a Plan and
// use Plan.NewOracle instead, which shares the gap box set across
// oracles.
func NewOracle(q *Query, indices []index.Index) *Oracle {
	bindings := make([]atomBinding, 0, len(q.atoms))
	maxArity := 0
	for ai, a := range q.atoms {
		relPos := make([]int, len(a.Vars))
		for i, v := range a.Vars {
			relPos[i] = q.varPos[v]
		}
		if len(relPos) > maxArity {
			maxArity = len(relPos)
		}
		bindings = append(bindings, atomBinding{ix: indices[ai], relPos: relPos})
	}
	return newOracle(q.Depths(), bindings, maxArity, nil)
}

// newOracle builds the per-worker prober. gaps, when non-nil, supplies a
// shared precomputed B(Q) for AllGaps (the Plan's memoized set).
func newOracle(depths []uint8, bindings []atomBinding, maxArity int, gaps func() []dyadic.Box) *Oracle {
	o := &Oracle{
		depths:   depths,
		bindings: bindings,
		cursors:  make([]index.Cursor, len(bindings)),
		allGaps:  gaps,
		proj:     make([]uint64, maxArity),
		seen:     boxtree.New(len(depths)),
	}
	for i, b := range bindings {
		o.cursors[i] = b.ix.NewCursor()
	}
	return o
}

// Dims implements core.Oracle.
func (o *Oracle) Dims() int { return len(o.depths) }

// Depths implements core.Oracle.
func (o *Oracle) Depths() []uint8 { return o.depths }

// extendInto lifts a relation-space box into the n-dimensional query-space
// slot out (which must be zeroed to λ outside the binding's positions).
func (b atomBinding) extendInto(out dyadic.Box, rb dyadic.Box) {
	for i, pos := range b.relPos {
		out[pos] = rb[i]
	}
}

// GapsContaining implements core.Oracle: each atom's index is probed with
// the projected point; its gap boxes, extended to query space, all
// contain the probe point. The result is empty exactly when the point's
// projection is a tuple of every relation — i.e. the point is an output
// tuple. The returned boxes are valid until the next call.
func (o *Oracle) GapsContaining(point []uint64) []dyadic.Box {
	n := len(o.depths)
	o.ext = o.ext[:0]
	o.out = o.out[:0]
	o.seen.Reset()
	for bi, b := range o.bindings {
		proj := o.proj[:len(b.relPos)]
		for i, pos := range b.relPos {
			proj[i] = point[pos]
		}
		for _, g := range o.cursors[bi].GapsAt(proj) {
			mark := len(o.ext)
			o.ext = dyadic.AppendLambdas(o.ext, n)
			eb := dyadic.Box(o.ext[mark : mark+n])
			b.extendInto(eb, g)
			if o.seen.Insert(eb) {
				o.out = append(o.out, eb)
			} else {
				o.ext = o.ext[:mark] // duplicate: reclaim the slot
			}
		}
	}
	return o.out
}

// AllGaps implements core.Oracle: the full set B(Q) of gap boxes from
// every index, extended to query space. Plan-backed oracles share one
// memoized read-only set; standalone oracles compute a fresh caller-owned
// set per call. Either way the boxes stay valid indefinitely.
func (o *Oracle) AllGaps() []dyadic.Box {
	if o.allGaps != nil {
		return o.allGaps()
	}
	return allGapsOf(len(o.depths), o.bindings)
}

// allGaps enumerates B(Q) for a query's bindings: every index's gap set,
// extended to query space and deduplicated. The boxes are carved from a
// fresh arena (so the whole set costs O(log) allocations) and only read
// afterwards.
func allGaps(q *Query, bindings []atomBinding) []dyadic.Box {
	return allGapsOf(len(q.Depths()), bindings)
}

func allGapsOf(n int, bindings []atomBinding) []dyadic.Box {
	var out []dyadic.Box
	var arena []dyadic.Interval
	seen := boxtree.New(n)
	for _, b := range bindings {
		for _, g := range b.ix.AllGaps() {
			mark := len(arena)
			arena = dyadic.AppendLambdas(arena, n)
			eb := dyadic.Box(arena[mark : mark+n])
			b.extendInto(eb, g)
			if seen.Insert(eb) {
				out = append(out, eb)
			} else {
				arena = arena[:mark]
			}
		}
	}
	return out
}
