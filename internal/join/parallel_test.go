package join_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/workload"
)

// families returns one representative query per workload family in
// internal/workload (small instances: the differential matrix below runs
// each under many shard/worker combinations, including under -race).
func families() map[string]*join.Query {
	return map[string]*join.Query{
		"path":           workload.PathQuery(3, 60, 6, 7),
		"star":           workload.StarQuery(3, 40, 5, 11),
		"triangle-msb":   workload.TriangleMSB(3),
		"triangle-star":  workload.TriangleAGMStar(12, 6),
		"triangle-dense": workload.TriangleDense(5, 4),
		"bowtie-block":   workload.BowtieBlock(4),
		"gao-sensitive":  workload.GAOSensitive(10, 5),
		"tree-ordered":   workload.TreeOrderedHard(4),
		"four-cycle":     workload.FourCycleBlocks(3),
		"diag-bowtie":    workload.DiagonalBowtie(4),
		"clique":         workload.CliqueQuery(3, 10, 0.4, 4, 13),
	}
}

// TestParallelMatchesSequential is the cross-shard differential test: for
// every workload family, every mode, shard counts 1/2/4/8 and worker
// counts 1..4, the parallel result must equal the sequential one — the
// same tuple multiset in the same (shard-major, SAO-lexicographic =
// sequential) order, with matching merged Stats.Outputs.
func TestParallelMatchesSequential(t *testing.T) {
	for name, q := range families() {
		for _, mode := range []core.Mode{core.Reloaded, core.Preloaded} {
			seq, err := join.Execute(q, join.Options{Mode: mode, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s/%v sequential: %v", name, mode, err)
			}
			plan, err := join.NewPlan(q, join.Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 4, 8} {
				for workers := 1; workers <= 4; workers++ {
					par, err := plan.Execute(join.Options{Mode: mode, Parallelism: workers, Shards: shards})
					if err != nil {
						t.Fatalf("%s/%v shards=%d workers=%d: %v", name, mode, shards, workers, err)
					}
					if len(par.Tuples) != len(seq.Tuples) || (len(seq.Tuples) > 0 && !reflect.DeepEqual(par.Tuples, seq.Tuples)) {
						t.Fatalf("%s/%v shards=%d workers=%d: %d tuples != sequential %d (or order differs)",
							name, mode, shards, workers, len(par.Tuples), len(seq.Tuples))
					}
					if par.Stats.Outputs != seq.Stats.Outputs {
						t.Fatalf("%s/%v shards=%d workers=%d: Outputs %d != %d",
							name, mode, shards, workers, par.Stats.Outputs, seq.Stats.Outputs)
					}
				}
			}
		}
	}
}

// TestParallelDeterministicOrder documents and enforces the ordering
// contract: parallel Result.Tuples come in shard-major order with the
// SAO-lexicographic order inside each shard, which is exactly the
// sequential enumeration order — so repeated parallel runs are
// bit-identical regardless of scheduling.
func TestParallelDeterministicOrder(t *testing.T) {
	q := workload.PathQuery(3, 80, 6, 3)
	var first [][]uint64
	for trial := 0; trial < 5; trial++ {
		res, err := join.Execute(q, join.Options{Mode: core.Preloaded, Parallelism: 4, Shards: 8})
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = res.Tuples
			if len(first) == 0 {
				t.Fatal("instance has empty output; test is vacuous")
			}
			continue
		}
		if !reflect.DeepEqual(res.Tuples, first) {
			t.Fatalf("trial %d produced a different tuple order", trial)
		}
	}
	// SAO-lexicographic means sorted by the SAO permutation of positions.
	seq, err := join.Execute(q, join.Options{Mode: core.Preloaded, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, seq.Tuples) {
		t.Fatal("parallel order differs from sequential enumeration order")
	}
}

// TestParallelOnOutputContract: the callback is serialized (never two
// invocations at once), sees the sequential order, and returning false
// stops the enumeration with nothing delivered past the stop.
func TestParallelOnOutputContract(t *testing.T) {
	q := workload.TriangleDense(4, 4)
	seq, err := join.Execute(q, join.Options{Mode: core.Preloaded, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	inFlight := 0
	var got [][]uint64
	res, err := join.Execute(q, join.Options{Mode: core.Preloaded, Parallelism: 4, Shards: 8,
		OnOutput: func(tup []uint64) bool {
			mu.Lock()
			inFlight++
			if inFlight != 1 {
				t.Error("OnOutput invoked concurrently")
			}
			got = append(got, append([]uint64(nil), tup...))
			inFlight--
			mu.Unlock()
			return true
		}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, seq.Tuples) {
		t.Fatalf("streamed %d tuples != sequential %d (or order differs)", len(got), len(seq.Tuples))
	}
	if res.Stats.Outputs != int64(len(seq.Tuples)) {
		t.Errorf("Outputs = %d, want %d", res.Stats.Outputs, len(seq.Tuples))
	}

	const k = 3
	got = nil
	res, err = join.Execute(q, join.Options{Mode: core.Preloaded, Parallelism: 4, Shards: 8,
		OnOutput: func(tup []uint64) bool {
			got = append(got, append([]uint64(nil), tup...))
			return len(got) < k
		}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, seq.Tuples[:k]) {
		t.Fatalf("early stop delivered %v, want first %d sequential tuples", got, k)
	}
	if res.Stats.Outputs != k {
		t.Errorf("Outputs after early stop = %d, want %d", res.Stats.Outputs, k)
	}
}

func TestParallelMaxOutput(t *testing.T) {
	q := workload.TriangleDense(4, 4)
	seq, err := join.Execute(q, join.Options{Mode: core.Preloaded, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := len(seq.Tuples)
	for _, limit := range []int{1, total / 2, total + 10} {
		res, err := join.Execute(q, join.Options{Mode: core.Preloaded, Parallelism: 3, Shards: 4, MaxOutput: limit})
		if err != nil {
			t.Fatal(err)
		}
		want := min(limit, total)
		if len(res.Tuples) != want {
			t.Errorf("limit=%d: got %d tuples, want %d", limit, len(res.Tuples), want)
		}
	}
	// Default Parallelism (0) with MaxOutput must stay sequential so the
	// first-K-tuples guarantee holds run after run.
	res, err := join.Execute(q, join.Options{Mode: core.Preloaded, MaxOutput: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuples, seq.Tuples[:3]) {
		t.Errorf("MaxOutput with default Parallelism returned %v, want first 3 sequential tuples", res.Tuples)
	}
}

// TestStreamingDefaultsToSequential: with OnOutput set and Parallelism
// left 0, execution must take the sequential engine (O(1) tuple memory,
// prompt early stop) — observable as stats identical to an explicit
// Parallelism: 1 run, which the sharded path's merged stats are not.
func TestStreamingDefaultsToSequential(t *testing.T) {
	q := workload.TriangleDense(4, 4)
	seq, err := join.Execute(q, join.Options{Mode: core.Preloaded, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	res, err := join.Execute(q, join.Options{Mode: core.Preloaded,
		OnOutput: func([]uint64) bool { n++; return true }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != seq.Stats {
		t.Errorf("streaming default stats %+v != sequential %+v", res.Stats, seq.Stats)
	}
	if int64(n) != seq.Stats.Outputs {
		t.Errorf("streamed %d tuples, want %d", n, seq.Stats.Outputs)
	}
}

func TestParallelContextCancellation(t *testing.T) {
	q := workload.PathQuery(3, 60, 6, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := join.Execute(q, join.Options{Parallelism: 2, Context: ctx}); err != context.Canceled {
		t.Fatalf("parallel err = %v, want context.Canceled", err)
	}
	// The sequential engine honors the same option.
	if _, err := join.Execute(q, join.Options{Parallelism: 1, Context: ctx}); err != context.Canceled {
		t.Fatalf("sequential err = %v, want context.Canceled", err)
	}
}

// TestParallelLBFallsBackToSequential: the LB modes ignore Parallelism
// (the Balance lift re-maps the whole space) but still work.
func TestParallelLBFallsBackToSequential(t *testing.T) {
	q := workload.TriangleMSB(3)
	seq, err := join.Execute(q, join.Options{Mode: core.ReloadedLB, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := join.Execute(q, join.Options{Mode: core.ReloadedLB, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.Tuples, seq.Tuples) {
		t.Fatal("LB fallback diverged from sequential")
	}
}

// TestPlanExecuteRejectsConflictingSAO: planning-time fields are fixed at
// NewPlan; asking Execute for a different SAO must error, not silently
// run the plan's order.
func TestPlanExecuteRejectsConflictingSAO(t *testing.T) {
	q := workload.TriangleMSB(3)
	plan, err := join.NewPlan(q, join.Options{SAOVars: []string{"A", "B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(join.Options{SAOVars: []string{"C", "B", "A"}}); err == nil {
		t.Fatal("conflicting SAO accepted")
	}
	// The same SAO (and an unset one) pass.
	if _, err := plan.Execute(join.Options{SAOVars: []string{"A", "B", "C"}, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(join.Options{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestPlanConcurrentExecute: one plan, many concurrent executions — the
// multi-tenant reuse the plan/oracle split is for. Run with -race.
func TestPlanConcurrentExecute(t *testing.T) {
	q := workload.TriangleAGMStar(12, 6)
	plan, err := join.NewPlan(q, join.Options{Mode: core.Preloaded})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := plan.Execute(join.Options{Mode: core.Preloaded, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := plan.Execute(join.Options{Mode: core.Preloaded, Parallelism: 1 + i%3, Shards: 1 << (i % 4)})
			if err == nil && !reflect.DeepEqual(res.Tuples, seq.Tuples) {
				err = fmt.Errorf("concurrent execute %d diverged", i)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
