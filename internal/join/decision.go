package join

import (
	"fmt"
	"strings"

	"tetrisjoin/internal/index"
	"tetrisjoin/internal/planner"
)

// Decision is the resolved planning outcome for a query: the splitting
// attribute order, the per-atom index families, and — when the
// statistics-driven planner produced it — the cost estimate, scored
// candidates and a fingerprint of the planning inputs. Plans record the
// decision they were prepared under (Plan.Decision), and the catalog
// folds Fingerprint into its plan-cache key so a re-planned query shape
// can never be served a stale cached plan.
type Decision struct {
	// SAOVars is the chosen splitting attribute order by variable name.
	SAOVars []string
	// sao is the same order as query-variable positions.
	sao []int
	// Planned reports that the statistics-driven planner made the choice
	// (strategy SAOPlanned, or SAOAuto on a cyclic query). Unplanned
	// decisions — explicit SAOVars, SAONatural, SAOAuto on acyclic
	// queries — carry the order only.
	Planned bool
	// Families is the chosen index family per atom (parallel to the
	// query's atoms) when Planned; nil otherwise, meaning the classical
	// SAO-consistent B-tree default for every atom.
	Families []index.Family
	// EstimatedResolutions is the planner's cost-model estimate for the
	// chosen order (Σ of prefix-join size estimates): the number the
	// catalog's feedback loop compares observed resolution counts
	// against. 0 when not Planned.
	EstimatedResolutions float64
	// Fingerprint identifies the planning inputs and outputs (relation
	// snapshots via stats fingerprints, chosen order, families,
	// feedback). 0 when not Planned.
	Fingerprint uint64
	// Candidates are the orders the planner scored, winner first. Empty
	// when not Planned.
	Candidates []PlannedCandidate
}

// PlannedCandidate is one order the planner considered, with its score
// and the reason it lost (empty for the winner). Kept for explain
// output.
type PlannedCandidate struct {
	// SAOVars is the candidate order by variable name.
	SAOVars []string
	// Score is the cost-model estimate, or the measured resolution count
	// when Observed.
	Score    float64
	Source   string
	Observed bool
	// Rejection explains why the candidate lost; empty for the winner.
	Rejection string
}

// SAO returns the decision's order as query-variable positions.
func (d *Decision) SAO() []int { return d.sao }

// Decide resolves the planning decision Execute/PreparePlan would use
// for the query under the given options, without building anything.
// Explicit opts.SAOVars always wins (an unplanned decision); otherwise
// the strategy dispatches: SAONatural takes first-occurrence order,
// SAOAuto keeps the paper's reverse-GYO order on α-acyclic queries and
// invokes the statistics-driven planner on cyclic ones, and SAOPlanned
// invokes the planner unconditionally. opts.Feedback (observed
// resolution counts keyed by comma-joined SAO variable names) calibrates
// the planner's scores.
func Decide(q *Query, opts Options) (*Decision, error) {
	if opts.Decision != nil {
		return opts.Decision, nil
	}
	if len(opts.SAOVars) > 0 {
		sao, err := validateSAOVars(q, opts.SAOVars)
		if err != nil {
			return nil, err
		}
		return unplannedDecision(q, sao), nil
	}
	n := len(q.vars)
	switch opts.Strategy {
	case SAONatural:
		sao := make([]int, n)
		for i := range sao {
			sao[i] = i
		}
		return unplannedDecision(q, sao), nil
	case SAOAuto:
		h := q.Hypergraph()
		if order, acyclic := h.GYO(); acyclic {
			// The acyclic regime has a theorem-backed order (reverse GYO,
			// Thm D.8) and Õ(N+Z) behavior regardless of skew; statistics
			// cannot improve on it, so planning is reserved for cyclic
			// queries.
			sao := make([]int, n)
			for i, v := range order {
				sao[n-1-i] = v
			}
			return unplannedDecision(q, sao), nil
		}
		return plannedDecision(q, opts)
	case SAOPlanned:
		return plannedDecision(q, opts)
	default:
		return nil, fmt.Errorf("join: unknown SAO strategy %d", opts.Strategy)
	}
}

// unplannedDecision wraps a fixed order with the classical B-tree
// index default.
func unplannedDecision(q *Query, sao []int) *Decision {
	return &Decision{SAOVars: varsOf(q, sao), sao: sao}
}

// plannedDecision runs the statistics-driven planner over the query. A
// planner failure degrades to the classical elimination-order default
// rather than failing the query.
func plannedDecision(q *Query, opts Options) (*Decision, error) {
	atoms := make([]planner.Atom, len(q.atoms))
	for ai, a := range q.atoms {
		vars := make([]int, len(a.Vars))
		for i, v := range a.Vars {
			vars[i] = q.varPos[v]
		}
		atoms[ai] = planner.Atom{Rel: a.Relation, Vars: vars}
	}
	pd, err := planner.Choose(len(q.vars), atoms, planner.Options{
		Observed: positionFeedback(q, opts.Feedback),
	})
	if err != nil {
		return classicalDecision(q), nil
	}
	d := &Decision{
		SAOVars:              varsOf(q, pd.SAO),
		sao:                  pd.SAO,
		Planned:              true,
		Families:             pd.Families,
		EstimatedResolutions: pd.EstimatedResolutions,
		Fingerprint:          pd.Fingerprint,
	}
	for _, c := range pd.Candidates {
		d.Candidates = append(d.Candidates, PlannedCandidate{
			SAOVars:   varsOf(q, c.SAO),
			Score:     c.Score,
			Source:    c.Source,
			Observed:  c.Observed,
			Rejection: c.Rejection,
		})
	}
	return d, nil
}

// classicalDecision is the engine's pre-planner cyclic default: the
// reverse of a minimum-induced-width elimination order.
func classicalDecision(q *Query) *Decision {
	h := q.Hypergraph()
	n := len(q.vars)
	var elim []int
	if order, acyclic := h.GYO(); acyclic {
		elim = order
	} else {
		elim, _ = h.EliminationOrder()
	}
	sao := make([]int, n)
	for i, v := range elim {
		sao[n-1-i] = v
	}
	return unplannedDecision(q, sao)
}

// positionFeedback converts feedback keyed by comma-joined variable
// names ("B,A,C") into the planner's position-keyed form, dropping
// entries that do not name a permutation of this query's variables.
func positionFeedback(q *Query, feedback map[string]float64) map[string]float64 {
	if len(feedback) == 0 {
		return nil
	}
	out := make(map[string]float64, len(feedback))
	for key, obs := range feedback {
		sao, err := validateSAOVars(q, strings.Split(key, ","))
		if err != nil {
			continue
		}
		out[planner.SAOKey(sao)] = obs
	}
	return out
}

// FeedbackKey renders an SAO (by variable name) as the comma-joined
// form Options.Feedback and the catalog's observation registry key by.
func FeedbackKey(saoVars []string) string { return strings.Join(saoVars, ",") }

// validateSAOVars checks that the named order is a permutation of the
// query's variables and converts it to positions.
func validateSAOVars(q *Query, saoVars []string) ([]int, error) {
	if len(saoVars) != len(q.vars) {
		return nil, fmt.Errorf("join: SAO has %d variables, query has %d", len(saoVars), len(q.vars))
	}
	sao := make([]int, len(saoVars))
	seen := map[int]bool{}
	for i, v := range saoVars {
		pos := q.VarIndex(v)
		if pos < 0 {
			return nil, fmt.Errorf("join: SAO variable %s not in query", v)
		}
		if seen[pos] {
			return nil, fmt.Errorf("join: SAO repeats variable %s", v)
		}
		seen[pos] = true
		sao[i] = pos
	}
	return sao, nil
}

func varsOf(q *Query, sao []int) []string {
	out := make([]string, len(sao))
	for i, pos := range sao {
		out[i] = q.vars[pos]
	}
	return out
}

// atomSpec resolves the index spec one atom needs under the decision:
// the family the planner chose (B-tree by default), with the B-tree's
// attribute order kept SAO-consistent.
func atomSpec(q *Query, a Atom, d *Decision, ai int) index.Spec {
	fam := index.BTreeFamily
	if d.Planned && ai < len(d.Families) {
		fam = d.Families[ai]
	}
	switch fam {
	case index.DyadicFamily:
		return index.DyadicSpec()
	case index.KDTreeFamily:
		return index.KDTreeSpec()
	default:
		return index.BTreeSpec(SAOIndexOrder(q, a, d.sao)...)
	}
}
