package join

import (
	"fmt"
	"math/big"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/index"
)

// SAOStrategy selects how the splitting attribute order is derived from
// the query when not given explicitly.
type SAOStrategy int

const (
	// SAOAuto follows the paper's prescriptions: for α-acyclic queries
	// the reverse of a GYO elimination order (Theorem D.8); otherwise the
	// reverse of a minimum-induced-width elimination order
	// (Theorems 4.7 and 4.9).
	SAOAuto SAOStrategy = iota
	// SAONatural uses the variables' first-occurrence order.
	SAONatural
)

// Options configures query execution.
type Options struct {
	// Mode selects the Tetris variant (default core.Reloaded).
	Mode core.Mode
	// SAOVars, when non-empty, fixes the splitting attribute order by
	// variable name (a permutation of the query's variables).
	SAOVars []string
	// Strategy picks the automatic SAO derivation when SAOVars is empty.
	Strategy SAOStrategy
	// NoCache, SinglePass, DisableSubsume, TrackProvenance,
	// MaxResolutions, MaxOutput and OnOutput are forwarded to the core
	// engine; see core.Options.
	NoCache         bool
	SinglePass      bool
	DisableSubsume  bool
	TrackProvenance bool
	MaxResolutions  int64
	MaxOutput       int
	OnOutput        func(tuple []uint64) bool
}

// Result is the outcome of a join: tuples over Vars (in Vars order), the
// SAO that was used, and the core work statistics.
type Result struct {
	Vars   []string
	SAO    []string
	Tuples [][]uint64
	Stats  core.Stats
}

// ChooseSAO returns the splitting attribute order (as variable positions)
// that Execute would use for the query under the given options.
func ChooseSAO(q *Query, opts Options) ([]int, error) {
	if len(opts.SAOVars) > 0 {
		if len(opts.SAOVars) != len(q.vars) {
			return nil, fmt.Errorf("join: SAO has %d variables, query has %d", len(opts.SAOVars), len(q.vars))
		}
		sao := make([]int, len(opts.SAOVars))
		seen := map[int]bool{}
		for i, v := range opts.SAOVars {
			pos := q.VarIndex(v)
			if pos < 0 {
				return nil, fmt.Errorf("join: SAO variable %s not in query", v)
			}
			if seen[pos] {
				return nil, fmt.Errorf("join: SAO repeats variable %s", v)
			}
			seen[pos] = true
			sao[i] = pos
		}
		return sao, nil
	}
	n := len(q.vars)
	sao := make([]int, n)
	switch opts.Strategy {
	case SAONatural:
		for i := range sao {
			sao[i] = i
		}
	case SAOAuto:
		h := q.Hypergraph()
		var elim []int
		if order, acyclic := h.GYO(); acyclic {
			elim = order
		} else {
			elim, _ = h.EliminationOrder()
		}
		// SAO = reverse of the elimination order: the paper's GAO lists
		// A_1..A_n with A_n eliminated first.
		for i, v := range elim {
			sao[n-1-i] = v
		}
	default:
		return nil, fmt.Errorf("join: unknown SAO strategy %d", opts.Strategy)
	}
	return sao, nil
}

// BuildIndices returns one index per atom: the atom's own indices pooled
// into a Union when provided, and otherwise a B-tree index consistent
// with the given SAO (the GAO-consistency default of the paper).
func BuildIndices(q *Query, sao []int) ([]index.Index, error) {
	saoRank := make([]int, len(q.vars))
	for r, pos := range sao {
		saoRank[pos] = r
	}
	out := make([]index.Index, len(q.atoms))
	for ai, a := range q.atoms {
		if len(a.Indexes) == 1 {
			out[ai] = a.Indexes[0]
			continue
		}
		if len(a.Indexes) > 1 {
			u, err := index.NewUnion(a.Indexes...)
			if err != nil {
				return nil, err
			}
			out[ai] = u
			continue
		}
		// Sort the relation's attributes by SAO rank of their variables.
		attrs := append([]string(nil), a.Relation.Attrs()...)
		rank := func(attr string) int {
			for i, at := range a.Relation.Attrs() {
				if at == attr {
					return saoRank[q.varPos[a.Vars[i]]]
				}
			}
			return -1
		}
		for i := 1; i < len(attrs); i++ {
			for j := i; j > 0 && rank(attrs[j]) < rank(attrs[j-1]); j-- {
				attrs[j], attrs[j-1] = attrs[j-1], attrs[j]
			}
		}
		ix, err := index.NewSorted(a.Relation, attrs...)
		if err != nil {
			return nil, err
		}
		out[ai] = ix
	}
	return out, nil
}

// Count returns the exact number of output tuples of the query without
// materializing them, via the counting variant of Tetris (the memoized
// #SAT-style skeleton over the preloaded gap box set). For queries whose
// output is enormous this is exponentially cheaper than Execute.
func Count(q *Query, opts Options) (*big.Int, core.Stats, error) {
	sao, err := ChooseSAO(q, opts)
	if err != nil {
		return nil, core.Stats{}, err
	}
	indices, err := BuildIndices(q, sao)
	if err != nil {
		return nil, core.Stats{}, err
	}
	oracle := NewOracle(q, indices)
	rep, err := core.CountUncovered(oracle.Depths(), oracle.AllGaps(), core.Options{
		SAO:     sao,
		NoCache: opts.NoCache,
	})
	if err != nil {
		return nil, core.Stats{}, err
	}
	return rep.Uncovered, rep.Stats, nil
}

// Execute runs the join and returns its result. The reduction follows
// Proposition 3.6: the output of the BCP over the query's gap boxes is
// exactly the join output.
func Execute(q *Query, opts Options) (*Result, error) {
	sao, err := ChooseSAO(q, opts)
	if err != nil {
		return nil, err
	}
	indices, err := BuildIndices(q, sao)
	if err != nil {
		return nil, err
	}
	oracle := NewOracle(q, indices)
	coreRes, err := core.Run(oracle, core.Options{
		Mode:            opts.Mode,
		SAO:             sao,
		NoCache:         opts.NoCache,
		SinglePass:      opts.SinglePass,
		DisableSubsume:  opts.DisableSubsume,
		TrackProvenance: opts.TrackProvenance,
		MaxResolutions:  opts.MaxResolutions,
		MaxOutput:       opts.MaxOutput,
		OnOutput:        opts.OnOutput,
	})
	if err != nil {
		return nil, err
	}
	saoVars := make([]string, len(sao))
	for i, pos := range sao {
		saoVars[i] = q.vars[pos]
	}
	return &Result{
		Vars:   q.vars,
		SAO:    saoVars,
		Tuples: coreRes.Tuples,
		Stats:  coreRes.Stats,
	}, nil
}
