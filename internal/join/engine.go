package join

import (
	"context"
	"fmt"
	"math/big"
	"runtime"
	"slices"
	"sort"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/index"
)

// SAOStrategy selects how the splitting attribute order is derived from
// the query when not given explicitly.
type SAOStrategy int

const (
	// SAOAuto follows the paper's prescriptions for α-acyclic queries
	// (the reverse of a GYO elimination order, Theorem D.8) and hands
	// cyclic queries — where the paper leaves order selection open and
	// the data decides — to the statistics-driven planner
	// (internal/planner), which keeps the classical
	// minimum-induced-width elimination order unless relation statistics
	// argue for a better one.
	SAOAuto SAOStrategy = iota
	// SAONatural uses the variables' first-occurrence order.
	SAONatural
	// SAOPlanned invokes the statistics-driven planner unconditionally,
	// acyclic queries included.
	SAOPlanned
)

// Options configures query execution.
type Options struct {
	// Mode selects the Tetris variant (default core.Reloaded).
	Mode core.Mode
	// SAOVars, when non-empty, fixes the splitting attribute order by
	// variable name (a permutation of the query's variables).
	SAOVars []string
	// Strategy picks the automatic SAO derivation when SAOVars is empty.
	Strategy SAOStrategy
	// Decision, when non-nil, is a pre-resolved planning decision (from
	// Decide) used verbatim by plan preparation: no strategy dispatch,
	// no planner run. The catalog resolves decisions once per prepare
	// and hands them down through this field.
	Decision *Decision
	// Feedback carries observed resolution counts from earlier
	// executions of this query shape, keyed by comma-joined SAO variable
	// names (FeedbackKey). The planner scores a candidate order by its
	// observed count instead of the cost-model estimate when one is
	// present — the calibration loop behind the catalog's re-planning.
	Feedback map[string]float64
	// Parallelism is the number of worker goroutines executing shards of
	// the query. 0 means runtime.GOMAXPROCS(0) — except when MaxOutput,
	// MaxResolutions or OnOutput is set, where 0 means sequential so that
	// limits keep machine-independent semantics and streaming keeps O(1)
	// tuple memory and prompt early stops. 1 selects the sequential
	// engine. The LB modes always run sequentially. Parallel execution is
	// deterministic: Result.Tuples come in shard-major, SAO-lexicographic
	// order, which is exactly the sequential enumeration order — only
	// runs with an explicit Parallelism > 1 AND MaxOutput (or stopped
	// early via OnOutput) may differ from a sequential run in which
	// tuples (never in what order) they report.
	Parallelism int
	// Shards is the number of disjoint dyadic subboxes the output space
	// is split into along the SAO prefix (rounded up to a power of two),
	// forming the work-stealing executor's seed fragments. 0 picks a
	// default based on Parallelism. More shards improve initial load
	// balance but repeat per-shard knowledge-base setup; dynamic
	// splitting (StealDepth) rebalances at runtime regardless.
	Shards int
	// StealDepth bounds the parallel executor's dynamic shard splitting:
	// an idle worker steals the SAO-later half of a busy worker's
	// remaining region, carved at most StealDepth binary splits below
	// the universe. 0 applies the core engine's default bound; negative
	// disables dynamic splitting (static seed shards only). Output order
	// is byte-identical to a sequential run at every setting. Forwarded
	// to core.Options.StealDepth; sequential runs ignore it.
	StealDepth int
	// Context, if non-nil, cancels execution cooperatively; the run
	// returns the context's error.
	Context context.Context
	// Budget, when non-nil, replaces MaxResolutions/MaxOutput with a
	// work quota shared across several executions: a serving session
	// hands the same budget to every query it runs so the limits cap the
	// session's combined work, not each call's. Forwarded to the core
	// engine (core.Options.Budget).
	Budget *core.Budget
	// SharedBase lets a Preloaded execution reuse the plan's memoized
	// shared knowledge base (Plan.PreloadedBase) instead of re-inserting
	// the full gap set: the amortization that makes repeated executions
	// of one prepared plan cheap. Catalog-prepared executions set it;
	// the one-shot path leaves it false so single executions keep the
	// paper's sequential accounting exactly. Ignored outside Preloaded
	// mode and under DisableSubsume (the base is built with
	// subsumption).
	SharedBase bool
	// Base, when non-nil, is an externally prepared read-only knowledge
	// base handed to the core engine (core.Options.Base): every box in
	// it must be a certified-empty region of THIS query's output space.
	// The catalog's maintenance layer builds such bases from the
	// unchanged atoms of a maintained query (Plan.PartialOracle +
	// core.BuildPreloadedBase) and hands them to delta passes, which
	// then run Reloaded and only discover the delta's certificate.
	// Mutually exclusive with SharedBase (the plan's own base).
	Base *core.PreparedBase
	// NoCache, SinglePass, DisableSubsume, TrackProvenance,
	// MaxResolutions, MaxOutput and OnOutput are forwarded to the core
	// engine; see core.Options. With Parallelism > 1, MaxResolutions and
	// MaxOutput act as budgets shared across shards.
	NoCache         bool
	SinglePass      bool
	DisableSubsume  bool
	TrackProvenance bool
	MaxResolutions  int64
	MaxOutput       int
	// OnOutput, if non-nil, streams output tuples as they become
	// available; returning false stops the enumeration. It is never
	// invoked concurrently: parallel runs serialize the callback through
	// the merging goroutine, delivering each shard's tuples in
	// deterministic shard-major order as the shard completes (tuples of a
	// shard are therefore buffered until the shard finishes). The tuple
	// slice is reused; callers must copy it to retain it.
	OnOutput func(tuple []uint64) bool
}

// Result is the outcome of a join: tuples over Vars (in Vars order), the
// SAO that was used, and the core work statistics.
type Result struct {
	Vars   []string
	SAO    []string
	Tuples [][]uint64
	Stats  core.Stats
}

// ChooseSAO returns the splitting attribute order (as variable positions)
// that Execute would use for the query under the given options. It is
// the order half of Decide; callers wanting the index families or the
// planner's reasoning use Decide directly.
func ChooseSAO(q *Query, opts Options) ([]int, error) {
	d, err := Decide(q, opts)
	if err != nil {
		return nil, err
	}
	return d.SAO(), nil
}

// BuildIndices returns one index per atom: the atom's own indices pooled
// into a Union when provided, and otherwise a B-tree index consistent
// with the given SAO (the GAO-consistency default of the paper). Atoms
// referencing the same relation with the same needed attribute order
// share one index. Family selection beyond the B-tree default comes
// from planning (PreparePlan with a planned Decision).
func BuildIndices(q *Query, sao []int) ([]index.Index, error) {
	indices, _, err := buildIndices(q, unplannedDecision(q, sao), NewIndexBuilder())
	return indices, err
}

// SAOIndexOrder returns the attribute order (names of the atom's
// relation) a default index for the atom must use to stay consistent
// with the SAO: the relation's attributes sorted by the SAO rank of the
// variables they bind. This is the lookup key the catalog's registry
// resolves ad-hoc orders with.
func SAOIndexOrder(q *Query, a Atom, sao []int) []string {
	saoRank := make([]int, len(q.vars))
	for r, pos := range sao {
		saoRank[pos] = r
	}
	schema := a.Relation.Attrs()
	rank := make([]int, len(schema))
	perm := make([]int, len(schema))
	for i := range schema {
		rank[i] = saoRank[q.varPos[a.Vars[i]]]
		perm[i] = i
	}
	sort.Slice(perm, func(x, y int) bool { return rank[perm[x]] < rank[perm[y]] })
	attrs := make([]string, len(schema))
	for i, pos := range perm {
		attrs[i] = schema[pos]
	}
	return attrs
}

// buildIndices resolves one index per atom through the given source,
// following the decision's per-atom family choices, returning how many
// indexes the source had to construct.
func buildIndices(q *Query, d *Decision, src IndexSource) ([]index.Index, int64, error) {
	out := make([]index.Index, len(q.atoms))
	var builds int64
	for ai, a := range q.atoms {
		if len(a.Indexes) == 1 {
			out[ai] = a.Indexes[0]
			continue
		}
		if len(a.Indexes) > 1 {
			u, err := index.NewUnion(a.Indexes...)
			if err != nil {
				return nil, 0, err
			}
			out[ai] = u
			continue
		}
		ix, built, err := src.IndexFor(a.Relation, atomSpec(q, a, d, ai))
		if err != nil {
			return nil, 0, err
		}
		if built {
			builds++
		}
		out[ai] = ix
	}
	return out, builds, nil
}

// Count returns the exact number of output tuples of the query without
// materializing them, via the counting variant of Tetris (the memoized
// #SAT-style skeleton over the preloaded gap box set). For queries whose
// output is enormous this is exponentially cheaper than Execute.
func Count(q *Query, opts Options) (*big.Int, core.Stats, error) {
	p, err := NewPlan(q, opts)
	if err != nil {
		return nil, core.Stats{}, err
	}
	count, stats, err := p.Count(opts)
	if err != nil {
		return nil, core.Stats{}, err
	}
	stats.IndexBuilds = p.builds
	return count, stats, nil
}

// Count runs the counting variant over the prepared plan, reusing its
// indices and memoized gap set; no index is built. opts.Context cancels
// the count cooperatively. The counting skeleton performs no geometric
// resolutions, so MaxResolutions/Budget do not apply to it.
func (p *Plan) Count(opts Options) (*big.Int, core.Stats, error) {
	rep, err := core.CountUncovered(p.q.Depths(), p.AllGaps(), core.Options{
		SAO:     p.sao,
		NoCache: opts.NoCache,
		Context: opts.Context,
	})
	if err != nil {
		return nil, core.Stats{}, err
	}
	return rep.Uncovered, rep.Stats, nil
}

// Covers runs the Boolean variant over the prepared plan: whether the
// query's gap set covers the whole space (empty join output), with a
// witness output tuple when it does not. opts.Context cancels the
// search cooperatively and its resolutions charge opts.Budget (or
// MaxResolutions) like any other run.
func (p *Plan) Covers(opts Options) (*core.CoverReport, error) {
	return core.Covers(p.q.Depths(), p.AllGaps(), core.Options{
		SAO:            p.sao,
		NoCache:        opts.NoCache,
		MaxResolutions: opts.MaxResolutions,
		Budget:         opts.Budget,
		Context:        opts.Context,
	})
}

// Execute runs the join and returns its result. The reduction follows
// Proposition 3.6: the output of the BCP over the query's gap boxes is
// exactly the join output. For repeated executions of the same query,
// prepare once with NewPlan and call Plan.Execute.
func Execute(q *Query, opts Options) (*Result, error) {
	p, err := NewPlan(q, opts)
	if err != nil {
		return nil, err
	}
	res, err := p.Execute(opts)
	if err != nil {
		return nil, err
	}
	// The one-shot path built the plan inside this call, so its index
	// constructions are charged to this execution. Prepared plans report
	// their build cost at preparation (Plan.IndexBuilds); their
	// executions report 0 here.
	res.Stats.IndexBuilds = p.builds
	return res, nil
}

// coreOptions translates execution options for the core engine.
func (p *Plan) coreOptions(opts Options) core.Options {
	return core.Options{
		Base:            opts.Base,
		Mode:            opts.Mode,
		SAO:             p.sao,
		NoCache:         opts.NoCache,
		SinglePass:      opts.SinglePass,
		DisableSubsume:  opts.DisableSubsume,
		TrackProvenance: opts.TrackProvenance,
		MaxResolutions:  opts.MaxResolutions,
		MaxOutput:       opts.MaxOutput,
		Budget:          opts.Budget,
		OnOutput:        opts.OnOutput,
		Context:         opts.Context,
		StealDepth:      opts.StealDepth,
	}
}

// Execute runs the prepared query. The plan itself is immutable: indices
// and SAO are reused across calls, and concurrent Execute calls on one
// plan are safe.
//
// With Parallelism != 1 (default runtime.GOMAXPROCS) the output space is
// split into disjoint dyadic shards along the SAO prefix and solved by a
// worker pool, one independent Tetris instance per shard over per-worker
// oracles; tuples and statistics merge deterministically in shard order,
// reproducing the sequential enumeration order exactly. The LB modes
// always run sequentially (the Balance lift re-maps the whole space, so
// subbox sharding does not apply).
func (p *Plan) Execute(opts Options) (*Result, error) {
	// Planning-time fields are fixed at NewPlan: an explicit SAO that
	// contradicts the plan's is a misuse, not a silent no-op (Strategy
	// cannot be cross-checked — it already shaped p.sao — and is simply
	// ignored here).
	if len(opts.SAOVars) > 0 && !slices.Equal(opts.SAOVars, p.saoVars) {
		return nil, fmt.Errorf("join: Plan.Execute cannot change the SAO (plan has %v, options ask %v); prepare a new plan",
			p.saoVars, opts.SAOVars)
	}
	parallelism := opts.Parallelism
	if parallelism == 0 {
		if opts.MaxOutput > 0 || opts.MaxResolutions > 0 || opts.Budget != nil || opts.OnOutput != nil {
			// Work limits and streaming stay sequential by default so
			// their semantics are machine-independent: MaxOutput then
			// always returns the first K tuples in enumeration order
			// (parallel shards race for the shared quota and return a
			// run-dependent subset), MaxResolutions bounds the sequential
			// resolution count (sharding shifts totals by a core-count-
			// dependent factor, so a sequentially calibrated bound could
			// spuriously abort), and OnOutput keeps O(1) tuple memory and
			// prompt early stops (parallel shards buffer their tuples
			// until each completes, and a returned false only cancels the
			// still-running shards). Callers who want parallel budgets or
			// buffered parallel streaming set Parallelism explicitly.
			parallelism = 1
		} else {
			parallelism = runtime.GOMAXPROCS(0)
		}
	}
	if parallelism < 1 {
		return nil, fmt.Errorf("join: Parallelism must be >= 0, got %d", opts.Parallelism)
	}
	shards := opts.Shards
	if shards < 0 {
		return nil, fmt.Errorf("join: Shards must be >= 0, got %d", opts.Shards)
	}
	if shards == 0 {
		// Two shards per worker smooths load imbalance without repeating
		// much per-shard setup; one worker keeps the sequential path.
		shards = 1
		if parallelism > 1 {
			shards = 2 * parallelism
		}
	}
	lb := opts.Mode == core.PreloadedLB || opts.Mode == core.ReloadedLB

	if opts.SharedBase && opts.Base != nil {
		return nil, fmt.Errorf("join: SharedBase and an explicit Base are mutually exclusive")
	}
	copts := p.coreOptions(opts)
	if opts.SharedBase && opts.Mode == core.Preloaded && !opts.DisableSubsume {
		base, err := p.PreloadedBase()
		if err != nil {
			return nil, err
		}
		copts.Base = base
	}
	var coreRes *core.Result
	var err error
	if lb || (parallelism == 1 && shards == 1) {
		coreRes, err = core.Run(p.NewOracle(), copts)
	} else {
		coreRes, err = core.RunShards(func() core.Oracle { return p.NewOracle() },
			copts, parallelism, shards)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Vars:   p.q.vars,
		SAO:    p.saoVars,
		Tuples: coreRes.Tuples,
		Stats:  coreRes.Stats,
	}, nil
}
