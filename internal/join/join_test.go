package join

import (
	"reflect"
	"sort"
	"testing"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/relation"
)

func triangleRelations(d uint8) (*relation.Relation, *relation.Relation, *relation.Relation) {
	// The Figure 5 instance: tuples whose MSBs differ.
	half := uint64(1) << (d - 1)
	mk := func(name string, attrs []string) *relation.Relation {
		r := relation.MustNewUniform(name, attrs, d)
		for a := uint64(0); a < half; a++ {
			for b := uint64(0); b < half; b++ {
				r.MustInsert(a, half+b)
				r.MustInsert(half+a, b)
			}
		}
		return r
	}
	return mk("R", []string{"A", "B"}), mk("S", []string{"B", "C"}), mk("T", []string{"A", "C"})
}

func sortTuples(ts [][]uint64) {
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
}

func TestNewQueryValidation(t *testing.T) {
	r := relation.MustNewUniform("R", []string{"X", "Y"}, 3)
	s := relation.MustNewUniform("S", []string{"X"}, 4)
	cases := []struct {
		name  string
		atoms []Atom
	}{
		{"no-atoms", nil},
		{"nil-relation", []Atom{{Vars: []string{"A", "B"}}}},
		{"arity", []Atom{{Relation: r, Vars: []string{"A"}}}},
		{"dup-var", []Atom{{Relation: r, Vars: []string{"A", "A"}}}},
		{"empty-var", []Atom{{Relation: r, Vars: []string{"A", ""}}}},
		{"depth-conflict", []Atom{
			{Relation: r, Vars: []string{"A", "B"}},
			{Relation: s, Vars: []string{"A"}},
		}},
		{"foreign-index", []Atom{{
			Relation: r, Vars: []string{"A", "B"},
			Indexes: []index.Index{index.MustSorted(relation.MustNewUniform("Z", []string{"X", "Y"}, 3))},
		}}},
	}
	for _, c := range cases {
		if _, err := NewQuery(c.atoms...); err == nil {
			t.Errorf("%s: invalid query accepted", c.name)
		}
	}
}

func TestQueryAccessors(t *testing.T) {
	r := relation.MustNewUniform("R", []string{"X", "Y"}, 3)
	s := relation.MustNewUniform("S", []string{"X", "Y"}, 3)
	q := MustNewQuery(
		Atom{Relation: r, Vars: []string{"A", "B"}},
		Atom{Relation: s, Vars: []string{"B", "C"}},
	)
	if !reflect.DeepEqual(q.Vars(), []string{"A", "B", "C"}) {
		t.Errorf("Vars = %v", q.Vars())
	}
	if q.VarIndex("C") != 2 || q.VarIndex("Z") != -1 {
		t.Error("VarIndex")
	}
	if q.String() != "R(A,B) ⋈ S(B,C)" {
		t.Errorf("String = %s", q.String())
	}
	h := q.Hypergraph()
	if h.N() != 3 || len(h.Edges()) != 2 {
		t.Error("Hypergraph shape")
	}
}

func TestParse(t *testing.T) {
	r := relation.MustNewUniform("R", []string{"X", "Y"}, 3)
	s := relation.MustNewUniform("S", []string{"X", "Y"}, 3)
	cat := map[string]*relation.Relation{"R": r, "S": s}
	q, err := Parse("R(A,B), S(B,C)", cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "R(A,B) ⋈ S(B,C)" {
		t.Errorf("parsed: %s", q.String())
	}
	// Self-join.
	q, err = Parse("R(A,B), R(B,A)", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms()) != 2 {
		t.Error("self-join atom count")
	}
	for _, bad := range []string{"R", "R(A,B", "Q(A,B)", "R(,B)"} {
		if _, err := Parse(bad, cat); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestChooseSAO(t *testing.T) {
	r := relation.MustNewUniform("R", []string{"X", "Y"}, 3)
	s := relation.MustNewUniform("S", []string{"X", "Y"}, 3)
	q := MustNewQuery(
		Atom{Relation: r, Vars: []string{"A", "B"}},
		Atom{Relation: s, Vars: []string{"B", "C"}},
	)
	// Explicit.
	sao, err := ChooseSAO(q, Options{SAOVars: []string{"C", "A", "B"}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sao, []int{2, 0, 1}) {
		t.Errorf("explicit SAO = %v", sao)
	}
	// Invalid explicit.
	for _, bad := range [][]string{{"A"}, {"A", "B", "Z"}, {"A", "A", "B"}} {
		if _, err := ChooseSAO(q, Options{SAOVars: bad}); err == nil {
			t.Errorf("SAO %v accepted", bad)
		}
	}
	// Natural.
	sao, err = ChooseSAO(q, Options{Strategy: SAONatural})
	if err != nil || !reflect.DeepEqual(sao, []int{0, 1, 2}) {
		t.Errorf("natural SAO = %v, %v", sao, err)
	}
	// Auto on acyclic query: a permutation.
	sao, err = ChooseSAO(q, Options{})
	if err != nil || len(sao) != 3 {
		t.Fatalf("auto SAO = %v, %v", sao, err)
	}
}

func TestExecuteTriangleEmptyAndCounts(t *testing.T) {
	r, s, tt := triangleRelations(3)
	q := MustNewQuery(
		Atom{Relation: r, Vars: []string{"A", "B"}},
		Atom{Relation: s, Vars: []string{"B", "C"}},
		Atom{Relation: tt, Vars: []string{"A", "C"}},
	)
	for _, mode := range []core.Mode{core.Reloaded, core.Preloaded, core.PreloadedLB, core.ReloadedLB} {
		res, err := Execute(q, Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res.Tuples) != 0 {
			t.Errorf("%v: triangle output should be empty, got %d tuples", mode, len(res.Tuples))
		}
	}
}

func TestExecuteTriangleNonEmpty(t *testing.T) {
	// Replace T by T' containing matching-MSB pairs (Figure 6).
	const d = 2
	r, s, _ := triangleRelations(d)
	half := uint64(1) << (d - 1)
	tp := relation.MustNewUniform("T", []string{"A", "C"}, d)
	for a := uint64(0); a < half; a++ {
		for c := uint64(0); c < half; c++ {
			tp.MustInsert(a, c)
			tp.MustInsert(half+a, half+c)
		}
	}
	q := MustNewQuery(
		Atom{Relation: r, Vars: []string{"A", "B"}},
		Atom{Relation: s, Vars: []string{"B", "C"}},
		Atom{Relation: tp, Vars: []string{"A", "C"}},
	)
	var want [][]uint64
	for a := uint64(0); a < 1<<d; a++ {
		for b := uint64(0); b < 1<<d; b++ {
			for c := uint64(0); c < 1<<d; c++ {
				if r.Contains(a, b) && s.Contains(b, c) && tp.Contains(a, c) {
					want = append(want, []uint64{a, b, c})
				}
			}
		}
	}
	sortTuples(want)
	if len(want) == 0 {
		t.Fatal("fixture produced empty output")
	}
	for _, mode := range []core.Mode{core.Reloaded, core.Preloaded, core.PreloadedLB, core.ReloadedLB} {
		res, err := Execute(q, Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		got := res.Tuples
		sortTuples(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: got %d tuples, want %d", mode, len(got), len(want))
		}
	}
}

func TestExecuteWithExplicitIndices(t *testing.T) {
	// The bowtie query with a dyadic index: same answer as default.
	r := relation.MustNewUniform("R", []string{"X"}, 3)
	s := relation.MustNewUniform("S", []string{"X", "Y"}, 3)
	tt := relation.MustNewUniform("T", []string{"Y"}, 3)
	for v := uint64(0); v < 4; v++ {
		r.MustInsert(v)
		tt.MustInsert(v + 2)
	}
	for a := uint64(0); a < 8; a += 2 {
		for b := uint64(0); b < 8; b += 3 {
			s.MustInsert(a, b)
		}
	}
	build := func(useDyadic bool) *Query {
		var sIdx []index.Index
		if useDyadic {
			sIdx = []index.Index{index.NewDyadic(s), index.MustSorted(s, "Y", "X")}
		}
		return MustNewQuery(
			Atom{Relation: r, Vars: []string{"A"}},
			Atom{Relation: s, Vars: []string{"A", "B"}, Indexes: sIdx},
			Atom{Relation: tt, Vars: []string{"B"}},
		)
	}
	resDefault, err := Execute(build(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	resDyadic, err := Execute(build(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := resDefault.Tuples, resDyadic.Tuples
	sortTuples(a)
	sortTuples(b)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("index choice changed the answer: %v vs %v", a, b)
	}
}

func TestExecuteStreamsAndStats(t *testing.T) {
	r, s, tt := triangleRelations(2)
	q := MustNewQuery(
		Atom{Relation: r, Vars: []string{"A", "B"}},
		Atom{Relation: s, Vars: []string{"B", "C"}},
		Atom{Relation: tt, Vars: []string{"A", "C"}},
	)
	res, err := Execute(q, Options{TrackProvenance: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Resolutions == 0 {
		t.Error("no resolutions recorded")
	}
	if len(res.SAO) != 3 {
		t.Errorf("SAO = %v", res.SAO)
	}
}

func TestOracleContract(t *testing.T) {
	// The query oracle must return gaps exactly for non-output points.
	r := relation.MustNewUniform("R", []string{"X", "Y"}, 2)
	r.MustInsert(1, 2)
	r.MustInsert(3, 0)
	s := relation.MustNewUniform("S", []string{"Y"}, 2)
	s.MustInsert(2)
	q := MustNewQuery(
		Atom{Relation: r, Vars: []string{"A", "B"}},
		Atom{Relation: s, Vars: []string{"B"}},
	)
	sao, _ := ChooseSAO(q, Options{})
	indices, err := BuildIndices(q, sao)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(q, indices)
	if o.Dims() != 2 {
		t.Fatalf("Dims = %d", o.Dims())
	}
	for a := uint64(0); a < 4; a++ {
		for b := uint64(0); b < 4; b++ {
			isOut := r.Contains(a, b) && s.Contains(b)
			gaps := o.GapsContaining([]uint64{a, b})
			if isOut && len(gaps) != 0 {
				t.Errorf("output point (%d,%d) got gaps %v", a, b, gaps)
			}
			if !isOut && len(gaps) == 0 {
				t.Errorf("non-output point (%d,%d) got no gaps", a, b)
			}
			for _, g := range gaps {
				if !g.ContainsPoint([]uint64{a, b}, o.Depths()) {
					t.Errorf("gap %v does not contain (%d,%d)", g, a, b)
				}
			}
		}
	}
	if len(o.AllGaps()) == 0 {
		t.Error("AllGaps empty")
	}
}
