package join

import (
	"sync"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/index"
	"tetrisjoin/internal/relation"
)

// IndexSource supplies the per-atom indexes a plan probes. IndexFor
// returns an index over rel matching the given spec — for the B-tree
// family, one whose gap boxes suit the spec's attribute order (the
// GAO-consistency requirement); the dyadic and k-d families are
// order-free — and reports whether the call had to construct a new
// index: the charge behind Stats.IndexBuilds.
//
// Two implementations exist: the self-contained builder used by NewPlan
// (fresh indexes per plan, deduplicated within the plan so self-joins
// sharing a spec share one index) and the catalog's registry-backed
// source, which reuses indexes across queries and relation versions so
// prepared executions build nothing at all.
type IndexSource interface {
	IndexFor(rel *relation.Relation, spec index.Spec) (ix index.Index, built bool, err error)
}

// builderKey identifies one (relation instance, spec) index within a
// self-contained plan preparation.
type builderKey struct {
	rel  *relation.Relation
	spec string
}

// indexBuilder is the self-contained IndexSource: it builds one index
// per distinct (relation, spec) pair and caches it for the duration of
// one preparation, so a query referencing the same relation with the
// same needed spec twice — a self-join under an SAO that ranks both
// atoms' variables alike — builds one index, not two.
type indexBuilder struct {
	cache map[builderKey]index.Index
}

// NewIndexBuilder returns the default self-contained index source.
func NewIndexBuilder() IndexSource {
	return &indexBuilder{cache: map[builderKey]index.Index{}}
}

func (b *indexBuilder) IndexFor(rel *relation.Relation, spec index.Spec) (index.Index, bool, error) {
	key := builderKey{rel: rel, spec: spec.Key()}
	if ix, ok := b.cache[key]; ok {
		return ix, false, nil
	}
	ix, err := spec.Build(rel)
	if err != nil {
		return nil, false, err
	}
	b.cache[key] = ix
	return ix, true, nil
}

// Plan is the prepared, immutable form of a query: the splitting
// attribute order has been chosen, per-atom indices built (or validated)
// and the variable bindings resolved. A Plan is safe to share between
// goroutines and to execute many times — Oracles instantiated from it are
// cheap per-worker probers over the shared index structures, which is
// what lets one prepared query serve many concurrent executions without
// rebuilding its indices.
type Plan struct {
	q        *Query
	decision *Decision
	sao      []int
	saoVars  []string
	indices  []index.Index
	bindings []atomBinding
	maxArity int
	builds   int64 // indexes constructed during preparation

	// The full gap box set B(Q) is computed at most once per plan and
	// shared read-only by every Preloaded shard.
	gapsOnce sync.Once
	gaps     []dyadic.Box

	// The shared Preloaded knowledge base (the gap set pre-inserted into
	// a read-only boxtree) is likewise built at most once and reused by
	// every subsequent Preloaded execution of the plan.
	baseOnce sync.Once
	base     *core.PreparedBase
	baseErr  error
}

// NewPlan prepares a query for execution: SAO choice (opts.SAOVars or
// opts.Strategy), index build and binding resolution. The returned plan
// ignores the execution-time fields of opts (mode, limits, callbacks);
// those are supplied per Execute call. Indexes are built fresh, one per
// distinct (relation, attribute order) pair; long-lived callers that
// want index construction amortized across queries prepare through a
// catalog instead (PreparePlan with the catalog's IndexSource).
func NewPlan(q *Query, opts Options) (*Plan, error) {
	return PreparePlan(q, opts, NewIndexBuilder())
}

// PreparePlan is NewPlan with an explicit index source: the catalog-
// backed preparation path. No index is constructed beyond what the
// source decides to build; the plan records how many constructions the
// preparation caused (Plan.IndexBuilds), and executions of the returned
// plan never build — the hot path is free of index construction by
// construction.
func PreparePlan(q *Query, opts Options, src IndexSource) (*Plan, error) {
	d, err := Decide(q, opts)
	if err != nil {
		return nil, err
	}
	indices, builds, err := buildIndices(q, d, src)
	if err != nil {
		return nil, err
	}
	p := &Plan{q: q, decision: d, sao: d.sao, saoVars: d.SAOVars, indices: indices, builds: builds}
	for ai, a := range q.atoms {
		relPos := make([]int, len(a.Vars))
		for i, v := range a.Vars {
			relPos[i] = q.varPos[v]
		}
		if len(relPos) > p.maxArity {
			p.maxArity = len(relPos)
		}
		p.bindings = append(p.bindings, atomBinding{ix: indices[ai], relPos: relPos})
	}
	return p, nil
}

// Query returns the planned query.
func (p *Plan) Query() *Query { return p.q }

// SAOVars returns the chosen splitting attribute order as variable names.
func (p *Plan) SAOVars() []string { return p.saoVars }

// SAO returns the chosen splitting attribute order as variable positions.
func (p *Plan) SAO() []int { return p.sao }

// Decision returns the planning decision the plan was prepared under.
func (p *Plan) Decision() *Decision { return p.decision }

// Indices returns the per-atom indices the plan probes. Atoms may share
// an entry (self-joins over one attribute order share one index).
func (p *Plan) Indices() []index.Index { return p.indices }

// IndexBuilds returns the number of indexes constructed while preparing
// this plan: 0 when every index came from a warm source (the catalog's
// registry), the distinct (relation, order) count when built fresh.
func (p *Plan) IndexBuilds() int64 { return p.builds }

// AllGaps returns the query's full gap box set B(Q), computed on first
// use and shared afterwards. The slice and its boxes are read-only.
func (p *Plan) AllGaps() []dyadic.Box {
	p.gapsOnce.Do(func() {
		p.gaps = allGaps(p.q, p.bindings)
	})
	return p.gaps
}

// PreloadedBase returns the plan's shared Preloaded knowledge base,
// built on first use from the memoized gap set and reused read-only by
// every later Preloaded execution. It is always built with subsumption;
// DisableSubsume runs must not use it (Plan.Execute skips it for them).
func (p *Plan) PreloadedBase() (*core.PreparedBase, error) {
	p.baseOnce.Do(func() {
		p.base, p.baseErr = core.BuildPreloadedBase(p.NewOracle(), core.Options{Mode: core.Preloaded})
	})
	return p.base, p.baseErr
}

// NewOracle instantiates a per-worker oracle over the plan: fresh index
// cursors and probe scratch over the shared immutable indices. Each
// oracle must be confined to one goroutine at a time.
func (p *Plan) NewOracle() *Oracle {
	return newOracle(p.q.Depths(), p.bindings, p.maxArity, p.AllGaps)
}

// PartialOracle instantiates an oracle restricted to the atoms for
// which include returns true: its gap set is the union of just those
// atoms' lifted gaps. The dimensionality and depths stay those of the
// full query, so boxes from a partial oracle live in the same output
// space as the plan's.
//
// This is the substrate of incremental maintenance: a knowledge base
// built (core.BuildPreloadedBase) over the atoms NOT touched by a
// relation delta is valid prior knowledge for every delta pass of that
// relation — those atoms' gap certificates hold in the pass's query
// verbatim — and is reusable across deltas for as long as the excluded
// relation is the only one changing.
func (p *Plan) PartialOracle(include func(atom int) bool) *Oracle {
	var bindings []atomBinding
	maxArity := 0
	for ai, b := range p.bindings {
		if !include(ai) {
			continue
		}
		if len(b.relPos) > maxArity {
			maxArity = len(b.relPos)
		}
		bindings = append(bindings, b)
	}
	return newOracle(p.q.Depths(), bindings, maxArity, nil)
}
