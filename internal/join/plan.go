package join

import (
	"sync"

	"tetrisjoin/internal/dyadic"
	"tetrisjoin/internal/index"
)

// Plan is the prepared, immutable form of a query: the splitting
// attribute order has been chosen, per-atom indices built (or validated)
// and the variable bindings resolved. A Plan is safe to share between
// goroutines and to execute many times — Oracles instantiated from it are
// cheap per-worker probers over the shared index structures, which is
// what lets one prepared query serve many concurrent executions without
// rebuilding its indices.
type Plan struct {
	q        *Query
	sao      []int
	saoVars  []string
	indices  []index.Index
	bindings []atomBinding
	maxArity int

	// The full gap box set B(Q) is computed at most once per plan and
	// shared read-only by every Preloaded shard.
	gapsOnce sync.Once
	gaps     []dyadic.Box
}

// NewPlan prepares a query for execution: SAO choice (opts.SAOVars or
// opts.Strategy), index build and binding resolution. The returned plan
// ignores the execution-time fields of opts (mode, limits, callbacks);
// those are supplied per Execute call.
func NewPlan(q *Query, opts Options) (*Plan, error) {
	sao, err := ChooseSAO(q, opts)
	if err != nil {
		return nil, err
	}
	indices, err := BuildIndices(q, sao)
	if err != nil {
		return nil, err
	}
	saoVars := make([]string, len(sao))
	for i, pos := range sao {
		saoVars[i] = q.vars[pos]
	}
	p := &Plan{q: q, sao: sao, saoVars: saoVars, indices: indices}
	for ai, a := range q.atoms {
		relPos := make([]int, len(a.Vars))
		for i, v := range a.Vars {
			relPos[i] = q.varPos[v]
		}
		if len(relPos) > p.maxArity {
			p.maxArity = len(relPos)
		}
		p.bindings = append(p.bindings, atomBinding{ix: indices[ai], relPos: relPos})
	}
	return p, nil
}

// Query returns the planned query.
func (p *Plan) Query() *Query { return p.q }

// SAOVars returns the chosen splitting attribute order as variable names.
func (p *Plan) SAOVars() []string { return p.saoVars }

// SAO returns the chosen splitting attribute order as variable positions.
func (p *Plan) SAO() []int { return p.sao }

// Indices returns the per-atom indices the plan probes.
func (p *Plan) Indices() []index.Index { return p.indices }

// AllGaps returns the query's full gap box set B(Q), computed on first
// use and shared afterwards. The slice and its boxes are read-only.
func (p *Plan) AllGaps() []dyadic.Box {
	p.gapsOnce.Do(func() {
		p.gaps = allGaps(p.q, p.bindings)
	})
	return p.gaps
}

// NewOracle instantiates a per-worker oracle over the plan: fresh index
// cursors and probe scratch over the shared immutable indices. Each
// oracle must be confined to one goroutine at a time.
func (p *Plan) NewOracle() *Oracle {
	return newOracle(p.q.Depths(), p.bindings, p.maxArity, p.AllGaps)
}
