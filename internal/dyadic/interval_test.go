package dyadic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	cases := []struct {
		in   string
		want Interval
	}{
		{"λ", Lambda},
		{"", Lambda},
		{"*", Lambda},
		{"0", Interval{0, 1}},
		{"1", Interval{1, 1}},
		{"010", Interval{2, 3}},
		{"1111", Interval{15, 4}},
		{"0001", Interval{1, 4}},
	}
	for _, c := range cases {
		got, err := ParseInterval(c.in)
		if err != nil {
			t.Fatalf("ParseInterval(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseInterval(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if MustParseInterval("0101").String() != "0101" {
		t.Errorf("round trip failed for 0101: got %s", MustParseInterval("0101"))
	}
	if Lambda.String() != "λ" {
		t.Errorf("λ String = %q", Lambda.String())
	}
}

func TestParseInvalid(t *testing.T) {
	if _, err := ParseInterval("01a"); err == nil {
		t.Error("ParseInterval accepted invalid bit")
	}
	long := make([]byte, MaxDepth+1)
	for i := range long {
		long[i] = '0'
	}
	if _, err := ParseInterval(string(long)); err == nil {
		t.Error("ParseInterval accepted over-long interval")
	}
}

func TestContains(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"λ", "λ", true},
		{"λ", "0", true},
		{"λ", "0101", true},
		{"0", "λ", false},
		{"0", "0", true},
		{"0", "01", true},
		{"0", "10", false},
		{"01", "010", true},
		{"01", "011", true},
		{"01", "001", false},
		{"010", "01", false},
	}
	for _, c := range cases {
		a, b := MustParseInterval(c.a), MustParseInterval(c.b)
		if got := a.Contains(b); got != c.want {
			t.Errorf("Contains(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLoHiSize(t *testing.T) {
	const d = 4
	cases := []struct {
		in           string
		lo, hi, size uint64
	}{
		{"λ", 0, 15, 16},
		{"0", 0, 7, 8},
		{"1", 8, 15, 8},
		{"01", 4, 7, 4},
		{"1010", 10, 10, 1},
	}
	for _, c := range cases {
		iv := MustParseInterval(c.in)
		if iv.Lo(d) != c.lo || iv.Hi(d) != c.hi || iv.Size(d) != c.size {
			t.Errorf("%s: got [%d,%d] size %d, want [%d,%d] size %d",
				c.in, iv.Lo(d), iv.Hi(d), iv.Size(d), c.lo, c.hi, c.size)
		}
		for v := uint64(0); v < 16; v++ {
			want := v >= c.lo && v <= c.hi
			if got := iv.ContainsValue(v, d); got != want {
				t.Errorf("%s.ContainsValue(%d) = %v, want %v", c.in, v, got, want)
			}
		}
	}
}

func TestChildParentSibling(t *testing.T) {
	iv := MustParseInterval("01")
	if iv.Child(0) != MustParseInterval("010") {
		t.Error("Child(0)")
	}
	if iv.Child(1) != MustParseInterval("011") {
		t.Error("Child(1)")
	}
	if iv.Child(0).Parent() != iv {
		t.Error("Parent of Child")
	}
	if iv.Sibling() != MustParseInterval("00") {
		t.Error("Sibling")
	}
	if iv.Child(1).LastBit() != 1 || iv.Child(0).LastBit() != 0 {
		t.Error("LastBit")
	}
	defer func() {
		if recover() == nil {
			t.Error("Parent of λ did not panic")
		}
	}()
	Lambda.Parent()
}

func TestMeet(t *testing.T) {
	cases := []struct {
		a, b, want string
		ok         bool
	}{
		{"λ", "01", "01", true},
		{"01", "λ", "01", true},
		{"0", "01", "01", true},
		{"010", "01", "010", true},
		{"00", "01", "", false},
		{"0", "1", "", false},
	}
	for _, c := range cases {
		got, ok := MustParseInterval(c.a).Meet(MustParseInterval(c.b))
		if ok != c.ok {
			t.Errorf("Meet(%s,%s) ok=%v want %v", c.a, c.b, ok, c.ok)
			continue
		}
		if ok && got != MustParseInterval(c.want) {
			t.Errorf("Meet(%s,%s)=%s want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestCommonPrefix(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"0101", "0110", "01"},
		{"0101", "0101", "0101"},
		{"01", "0101", "01"},
		{"0", "1", "λ"},
		{"λ", "111", "λ"},
		{"1110", "111", "111"},
	}
	for _, c := range cases {
		got := MustParseInterval(c.a).CommonPrefix(MustParseInterval(c.b))
		if got != MustParseInterval(c.want) {
			t.Errorf("CommonPrefix(%s,%s)=%s want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestCheck(t *testing.T) {
	if err := (Interval{Bits: 4, Len: 2}).Check(8); err == nil {
		t.Error("Check accepted bits exceeding length")
	}
	if err := (Interval{Bits: 0, Len: 9}).Check(8); err == nil {
		t.Error("Check accepted length exceeding depth")
	}
	if err := (Interval{Bits: 3, Len: 2}).Check(8); err != nil {
		t.Errorf("Check rejected valid interval: %v", err)
	}
}

// randInterval generates a valid random interval at depth d.
func randInterval(r *rand.Rand, d uint8) Interval {
	l := uint8(r.Intn(int(d) + 1))
	var b uint64
	if l > 0 {
		b = r.Uint64() & (1<<l - 1)
	}
	return Interval{Bits: b, Len: l}
}

func TestQuickContainmentIsPartialOrder(t *testing.T) {
	const d = 12
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b, c := randInterval(r, d), randInterval(r, d), randInterval(r, d)
		// Reflexive.
		if !a.Contains(a) {
			return false
		}
		// Antisymmetric.
		if a.Contains(b) && b.Contains(a) && a != b {
			return false
		}
		// Transitive.
		if a.Contains(b) && b.Contains(c) && !a.Contains(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickContainsAgreesWithValueSemantics(t *testing.T) {
	const d = 8
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randInterval(r, d), randInterval(r, d)
		// a.Contains(b) iff every value in b is in a.
		want := true
		for v := b.Lo(d); ; v++ {
			if !a.ContainsValue(v, d) {
				want = false
				break
			}
			if v == b.Hi(d) {
				break
			}
		}
		return a.Contains(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickDisjointOrNested(t *testing.T) {
	const d = 10
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randInterval(r, d), randInterval(r, d)
		overlap := a.Lo(d) <= b.Hi(d) && b.Lo(d) <= a.Hi(d)
		return a.Comparable(b) == overlap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		iv := randInterval(r, 20)
		back, err := ParseInterval(iv.String())
		return err == nil && back == iv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
