package dyadic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDecomposeRangeBasic(t *testing.T) {
	const d = 4
	cases := []struct {
		lo, hi uint64
		want   []string
	}{
		{0, 15, []string{"λ"}},
		{0, 7, []string{"0"}},
		{8, 15, []string{"1"}},
		{1, 1, []string{"0001"}},
		{5, 2, nil},
		{1, 14, []string{"0001", "001", "01", "10", "110", "1110"}},
		{4, 11, []string{"01", "10"}},
		{0, 0, []string{"0000"}},
		{15, 15, []string{"1111"}},
	}
	for _, c := range cases {
		got := DecomposeRange(c.lo, c.hi, d)
		if len(got) != len(c.want) {
			t.Errorf("DecomposeRange(%d,%d): got %v, want %v", c.lo, c.hi, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != MustParseInterval(c.want[i]) {
				t.Errorf("DecomposeRange(%d,%d)[%d] = %s, want %s", c.lo, c.hi, i, got[i], c.want[i])
			}
		}
	}
}

func TestQuickDecomposeRangeCoversExactly(t *testing.T) {
	const d = 8
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		lo := uint64(r.Intn(256))
		hi := uint64(r.Intn(256))
		ivs := DecomposeRange(lo, hi, d)
		if lo > hi {
			return len(ivs) == 0
		}
		if len(ivs) > 2*d {
			return false
		}
		// Disjoint, in order, covering exactly [lo,hi].
		covered := map[uint64]int{}
		for _, iv := range ivs {
			for v := iv.Lo(d); ; v++ {
				covered[v]++
				if v == iv.Hi(d) {
					break
				}
			}
		}
		for v := uint64(0); v < 256; v++ {
			want := 0
			if v >= lo && v <= hi {
				want = 1
			}
			if covered[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxDyadicIn(t *testing.T) {
	const d = 4
	cases := []struct {
		v, lo, hi uint64
		want      string
		ok        bool
	}{
		{5, 0, 15, "λ", true},
		{5, 4, 7, "01", true},
		{5, 5, 5, "0101", true},
		{5, 4, 6, "010", true},
		{5, 3, 7, "01", true},
		{5, 6, 9, "", false},
		{0, 0, 7, "0", true},
		{12, 9, 15, "11", true},
	}
	for _, c := range cases {
		got, ok := MaxDyadicIn(c.v, c.lo, c.hi, d)
		if ok != c.ok {
			t.Errorf("MaxDyadicIn(%d,[%d,%d]) ok=%v want %v", c.v, c.lo, c.hi, ok, c.ok)
			continue
		}
		if ok && got != MustParseInterval(c.want) {
			t.Errorf("MaxDyadicIn(%d,[%d,%d]) = %s, want %s", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestQuickMaxDyadicInIsMaximal(t *testing.T) {
	const d = 7
	r := rand.New(rand.NewSource(8))
	f := func() bool {
		lo := uint64(r.Intn(128))
		span := uint64(r.Intn(int(128 - lo)))
		hi := lo + span
		v := lo + uint64(r.Intn(int(span)+1))
		iv, ok := MaxDyadicIn(v, lo, hi, d)
		if !ok {
			return false
		}
		// Contains v, fits in range.
		if !iv.ContainsValue(v, d) || iv.Lo(d) < lo || iv.Hi(d) > hi {
			return false
		}
		// Maximal: parent (if any) escapes the range.
		if iv.Len > 0 {
			p := iv.Parent()
			if p.Lo(d) >= lo && p.Hi(d) <= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeBox(t *testing.T) {
	ds := []uint8{3, 3}
	boxes := DecomposeBox([]uint64{1, 2}, []uint64{6, 5}, ds)
	// Verify exact cover of the rectangle [1,6]x[2,5] by counting.
	count := map[[2]uint64]int{}
	for _, b := range boxes {
		for x := b[0].Lo(3); ; x++ {
			for y := b[1].Lo(3); ; y++ {
				count[[2]uint64{x, y}]++
				if y == b[1].Hi(3) {
					break
				}
			}
			if x == b[0].Hi(3) {
				break
			}
		}
	}
	for x := uint64(0); x < 8; x++ {
		for y := uint64(0); y < 8; y++ {
			want := 0
			if x >= 1 && x <= 6 && y >= 2 && y <= 5 {
				want = 1
			}
			if count[[2]uint64{x, y}] != want {
				t.Fatalf("point (%d,%d) covered %d times, want %d", x, y, count[[2]uint64{x, y}], want)
			}
		}
	}
	if DecomposeBox([]uint64{5}, []uint64{3}, []uint8{3}) != nil {
		t.Error("empty range should give nil")
	}
}

func TestCoverValues(t *testing.T) {
	const d = 3
	cases := []struct {
		values []uint64
		want   int // number of uncovered points must equal len(values)
	}{
		{nil, 0},
		{[]uint64{0}, 1},
		{[]uint64{7}, 1},
		{[]uint64{0, 7}, 2},
		{[]uint64{1, 3, 5, 7}, 4},
		{[]uint64{0, 1, 2, 3, 4, 5, 6, 7}, 8},
		{[]uint64{3}, 1},
	}
	for _, c := range cases {
		ivs := CoverValues(c.values, d)
		covered := map[uint64]int{}
		for _, iv := range ivs {
			for v := iv.Lo(d); ; v++ {
				covered[v]++
				if v == iv.Hi(d) {
					break
				}
			}
		}
		inSet := map[uint64]bool{}
		for _, v := range c.values {
			inSet[v] = true
		}
		for v := uint64(0); v < 8; v++ {
			want := 0
			if !inSet[v] {
				want = 1
			}
			if covered[v] != want {
				t.Errorf("values %v: point %d covered %d times, want %d", c.values, v, covered[v], want)
			}
		}
	}
}

func TestCoverValuesEmptyDomain(t *testing.T) {
	// Full domain as values: complement is empty.
	if ivs := CoverValues([]uint64{0, 1}, 1); len(ivs) != 0 {
		t.Errorf("full domain cover should be empty, got %v", ivs)
	}
	// No values: complement is everything.
	ivs := CoverValues(nil, 2)
	if len(ivs) != 1 || ivs[0] != Lambda {
		t.Errorf("empty values should give λ, got %v", ivs)
	}
}
