package dyadic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func depthsOf(n int, d uint8) []uint8 {
	ds := make([]uint8, n)
	for i := range ds {
		ds[i] = d
	}
	return ds
}

func TestBoxParseString(t *testing.T) {
	b := MustParseBox("01,λ,1")
	if len(b) != 3 {
		t.Fatalf("len = %d", len(b))
	}
	if b.String() != "⟨01,λ,1⟩" {
		t.Errorf("String = %s", b.String())
	}
	b2 := MustParseBox("⟨01, λ, 1⟩")
	if !b.Equal(b2) {
		t.Error("bracket/space parsing mismatch")
	}
}

func TestBoxContains(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"λ,λ", "01,10", true},
		{"0,λ", "01,10", true},
		{"0,1", "01,10", true},
		{"0,11", "01,10", false},
		{"01,10", "01,10", true},
		{"01,10", "0,λ", false},
		{"10,0", "10,01", true},
	}
	for _, c := range cases {
		a, b := MustParseBox(c.a), MustParseBox(c.b)
		if got := a.Contains(b); got != c.want {
			t.Errorf("Contains(%s,%s)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestBoxMeetIntersects(t *testing.T) {
	a := MustParseBox("0,λ")
	b := MustParseBox("λ,11")
	m, ok := a.Meet(b)
	if !ok || !m.Equal(MustParseBox("0,11")) {
		t.Errorf("Meet = %v, %v", m, ok)
	}
	c := MustParseBox("1,λ")
	if a.Intersects(c) {
		t.Error("disjoint boxes reported intersecting")
	}
	if _, ok := a.Meet(c); ok {
		t.Error("Meet of disjoint boxes succeeded")
	}
}

func TestBoxSupportProject(t *testing.T) {
	b := MustParseBox("01,λ,1,λ")
	s := b.Support()
	if len(s) != 2 || s[0] != 0 || s[1] != 2 {
		t.Errorf("Support = %v", s)
	}
	p := b.Project(map[int]bool{0: true})
	if !p.Equal(MustParseBox("01,λ,λ,λ")) {
		t.Errorf("Project = %v", p)
	}
}

func TestBoxUnitPointValues(t *testing.T) {
	ds := depthsOf(3, 4)
	p := Point([]uint64{3, 0, 15}, ds)
	if !p.IsUnit(ds) {
		t.Error("Point not unit")
	}
	vals := p.Values(ds)
	if vals[0] != 3 || vals[1] != 0 || vals[2] != 15 {
		t.Errorf("Values = %v", vals)
	}
	if !p.ContainsPoint([]uint64{3, 0, 15}, ds) {
		t.Error("ContainsPoint failed on own values")
	}
	if p.ContainsPoint([]uint64{3, 0, 14}, ds) {
		t.Error("ContainsPoint accepted wrong values")
	}
}

func TestBoxSplitAndFirstThick(t *testing.T) {
	ds := depthsOf(3, 2)
	sao := []int{0, 1, 2}
	b := MustParseBox("01,λ,λ")
	if dim := b.FirstThick(sao, ds); dim != 1 {
		t.Errorf("FirstThick = %d, want 1", dim)
	}
	b0, b1 := b.SplitAt(1)
	if !b0.Equal(MustParseBox("01,0,λ")) || !b1.Equal(MustParseBox("01,1,λ")) {
		t.Errorf("SplitAt = %v, %v", b0, b1)
	}
	unit := MustParseBox("01,10,11")
	if dim := unit.FirstThick(sao, ds); dim != -1 {
		t.Errorf("FirstThick(unit) = %d", dim)
	}
	// A different SAO changes the split dimension.
	b2 := MustParseBox("λ,λ,1")
	if dim := b2.FirstThick([]int{2, 1, 0}, ds); dim != 2 {
		t.Errorf("FirstThick with SAO (2,1,0) = %d, want 2", dim)
	}
}

func TestBoxVolume(t *testing.T) {
	ds := depthsOf(2, 3)
	if v := MustParseBox("λ,λ").Volume(ds); v != 64 {
		t.Errorf("Volume(universe) = %d", v)
	}
	if v := MustParseBox("0,11").Volume(ds); v != 4*2 {
		t.Errorf("Volume = %d", v)
	}
	if lv := MustParseBox("0,11").LogVolume(ds); lv != 3 {
		t.Errorf("LogVolume = %d", lv)
	}
}

func TestBoxKeyUnique(t *testing.T) {
	boxes := []string{"λ,λ", "0,λ", "λ,0", "00,λ", "0,0", "1,1", "01,10"}
	seen := map[string]string{}
	for _, s := range boxes {
		k := MustParseBox(s).Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("Key collision between %s and %s", prev, s)
		}
		seen[k] = s
	}
}

func TestBoxCheck(t *testing.T) {
	ds := depthsOf(2, 3)
	if err := MustParseBox("0101,λ").Check(ds); err == nil {
		t.Error("Check accepted component deeper than dimension")
	}
	if err := MustParseBox("010,λ").Check(ds); err != nil {
		t.Errorf("Check rejected valid box: %v", err)
	}
	if err := MustParseBox("0,λ,1").Check(ds); err == nil {
		t.Error("Check accepted wrong arity")
	}
}

func TestIsPrefixBox(t *testing.T) {
	cases := []struct {
		p, b string
		want bool
	}{
		{"λ,λ,λ", "01,10,11", true},
		{"01,λ,λ", "01,10,11", true},
		{"01,1,λ", "01,10,11", true},
		{"01,10,1", "01,10,11", true},
		{"01,10,11", "01,10,11", true},
		{"01,λ,1", "01,10,11", false},
		{"0,10,λ", "01,10,11", false},
		{"11,λ,λ", "01,10,11", false},
	}
	for _, c := range cases {
		if got := IsPrefixBox(MustParseBox(c.p), MustParseBox(c.b)); got != c.want {
			t.Errorf("IsPrefixBox(%s,%s)=%v want %v", c.p, c.b, got, c.want)
		}
	}
}

func randBox(r *rand.Rand, n int, d uint8) Box {
	b := make(Box, n)
	for i := range b {
		b[i] = randInterval(r, d)
	}
	return b
}

func TestQuickBoxContainsMeet(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		a, b := randBox(r, 3, 6), randBox(r, 3, 6)
		m, ok := a.Meet(b)
		if ok != a.Intersects(b) {
			return false
		}
		if ok {
			// The meet is contained in both and contains any common refinement.
			if !a.Contains(m) || !b.Contains(m) {
				return false
			}
		}
		// Containment implies intersection.
		if a.Contains(b) && !a.Intersects(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickBoxContainsPointConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	ds := depthsOf(2, 5)
	f := func() bool {
		b := randBox(r, 2, 5)
		v := []uint64{uint64(r.Intn(32)), uint64(r.Intn(32))}
		want := b[0].ContainsValue(v[0], 5) && b[1].ContainsValue(v[1], 5)
		return b.ContainsPoint(v, ds) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
