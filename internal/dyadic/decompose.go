package dyadic

import "fmt"

// DecomposeRange returns the canonical decomposition of the integer range
// [lo, hi] (inclusive) at depth d into a minimal sequence of disjoint
// dyadic intervals, ordered left to right. The result has at most 2d
// intervals (paper Proposition B.14). An empty result means lo > hi.
func DecomposeRange(lo, hi uint64, d uint8) []Interval {
	if lo > hi {
		return nil
	}
	if d < 64 && hi >= 1<<d {
		panic(fmt.Sprintf("dyadic: range end %d out of range for depth %d", hi, d))
	}
	var out []Interval
	for lo <= hi {
		// The largest aligned block starting at lo: limited both by the
		// alignment of lo and by the remaining length of the range.
		size := uint64(1) << d
		if lo != 0 {
			size = lo & (^lo + 1) // lowest set bit of lo
		}
		for size > hi-lo+1 {
			size >>= 1
		}
		var k uint8
		for s := size; s > 1; s >>= 1 {
			k++
		}
		out = append(out, Interval{Bits: lo >> k, Len: d - k})
		next := lo + size
		if next <= lo { // overflow guard at domain end
			break
		}
		lo = next
	}
	return out
}

// MaxDyadicIn returns the largest dyadic interval that contains the value
// v and is contained in [lo, hi], at depth d. This is the maximal dyadic
// gap box component for a probe point falling in the gap (lo, hi is the
// open interior between two adjacent stored values). The second result is
// false if v lies outside [lo, hi].
func MaxDyadicIn(v, lo, hi uint64, d uint8) (Interval, bool) {
	if v < lo || v > hi {
		return Interval{}, false
	}
	iv := Unit(v, d)
	for iv.Len > 0 {
		p := iv.Parent()
		if p.Lo(d) < lo || p.Hi(d) > hi {
			break
		}
		iv = p
	}
	return iv, true
}

// DecomposeBox decomposes an arbitrary axis-aligned integer box, given as
// inclusive [lo_i, hi_i] ranges per dimension, into disjoint dyadic boxes
// (at most (2d)^n of them, Proposition B.14). An empty result means some
// range is empty.
func DecomposeBox(lo, hi []uint64, depths []uint8) []Box {
	if len(lo) != len(hi) || len(lo) != len(depths) {
		panic("dyadic: DecomposeBox dimension mismatch")
	}
	perDim := make([][]Interval, len(lo))
	for i := range lo {
		perDim[i] = DecomposeRange(lo[i], hi[i], depths[i])
		if len(perDim[i]) == 0 {
			return nil
		}
	}
	out := []Box{Universe(len(lo))}
	for i, ivs := range perDim {
		next := make([]Box, 0, len(out)*len(ivs))
		for _, b := range out {
			for _, iv := range ivs {
				nb := b.Clone()
				nb[i] = iv
				next = append(next, nb)
			}
		}
		out = next
	}
	return out
}

// CoverValues returns the minimal set of disjoint dyadic intervals that
// together cover exactly the complement of the sorted, deduplicated value
// list within [0, 2^d). This is the 1-dimensional gap decomposition used
// by index gap enumeration. values must be sorted ascending.
func CoverValues(values []uint64, d uint8) []Interval {
	var out []Interval
	var lo uint64
	for _, v := range values {
		if v > lo {
			out = append(out, DecomposeRange(lo, v-1, d)...)
		}
		lo = v + 1
		if lo == 0 { // v was the max uint64 value (only possible if d == 64, excluded)
			return out
		}
	}
	max := uint64(1)<<d - 1
	if lo <= max {
		out = append(out, DecomposeRange(lo, max, d)...)
	}
	return out
}
