package dyadic

import "testing"

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestConstructorPanics(t *testing.T) {
	expectPanic(t, "NewInterval over-long", func() { NewInterval(0, MaxDepth+1) })
	expectPanic(t, "NewInterval bits overflow", func() { NewInterval(4, 2) })
	expectPanic(t, "Unit depth", func() { Unit(0, MaxDepth+1) })
	expectPanic(t, "Unit value", func() { Unit(8, 3) })
	expectPanic(t, "Child bit", func() { Lambda.Child(2) })
	if NewInterval(3, 2) != MustParseInterval("11") {
		t.Error("NewInterval valid case")
	}
}

func TestBoxPanics(t *testing.T) {
	ds := []uint8{3, 3}
	expectPanic(t, "Point mismatch", func() { Point([]uint64{1}, ds) })
	expectPanic(t, "Values non-unit", func() { MustParseBox("0,λ").Values(ds) })
	expectPanic(t, "Volume overflow", func() {
		big := make([]uint8, 2)
		big[0], big[1] = 62, 62
		Universe(2).Volume(big)
	})
	expectPanic(t, "MustParseBox", func() { MustParseBox("0,x") })
	expectPanic(t, "MustParseInterval", func() { MustParseInterval("x") })
	expectPanic(t, "DecomposeBox mismatch", func() { DecomposeBox([]uint64{0}, []uint64{1, 2}, ds) })
	expectPanic(t, "DecomposeRange domain", func() { DecomposeRange(0, 8, 3) })
}

func TestIntervalMiscAccessors(t *testing.T) {
	iv := MustParseInterval("101")
	if iv.LastBit() != 1 {
		t.Error("LastBit")
	}
	if iv.Disjoint(MustParseInterval("10")) {
		t.Error("Disjoint on nested intervals")
	}
	if !iv.Disjoint(MustParseInterval("00")) {
		t.Error("Disjoint on separated intervals")
	}
	if Lambda.IsUnit(0) != true {
		t.Error("λ is the unit of a zero-depth domain")
	}
}
