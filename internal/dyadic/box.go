package dyadic

import (
	"fmt"
	"strings"
)

// Box is a dyadic box: one dyadic interval per attribute of the output
// space (paper Definition 3.3). A Box with every component of full depth
// is a point (a potential output tuple); a component λ is a wildcard
// spanning that whole dimension.
type Box []Interval

// NewBox builds a box from the given intervals.
func NewBox(ivs ...Interval) Box {
	b := make(Box, len(ivs))
	copy(b, ivs)
	return b
}

// Universe returns the box ⟨λ, …, λ⟩ covering the whole n-dimensional
// output space.
func Universe(n int) Box { return make(Box, n) }

// Point returns the unit box for the tuple of values at the given depths.
func Point(values []uint64, depths []uint8) Box {
	if len(values) != len(depths) {
		panic("dyadic: Point values/depths length mismatch")
	}
	b := make(Box, len(values))
	for i, v := range values {
		b[i] = Unit(v, depths[i])
	}
	return b
}

// Check validates the box against the per-dimension depths.
func (b Box) Check(depths []uint8) error {
	if len(b) != len(depths) {
		return fmt.Errorf("dyadic: box has %d components, want %d", len(b), len(depths))
	}
	for i, iv := range b {
		if err := iv.Check(depths[i]); err != nil {
			return fmt.Errorf("component %d: %w", i, err)
		}
	}
	return nil
}

// Clone returns an independent copy of the box.
func (b Box) Clone() Box {
	c := make(Box, len(b))
	copy(c, b)
	return c
}

// Equal reports componentwise equality.
func (b Box) Equal(other Box) bool {
	if len(b) != len(other) {
		return false
	}
	for i := range b {
		if b[i] != other[i] {
			return false
		}
	}
	return true
}

// Contains reports whether b contains other: every component of b is a
// prefix of the corresponding component of other.
func (b Box) Contains(other Box) bool {
	if len(b) != len(other) {
		return false
	}
	for i := range b {
		if !b[i].Contains(other[i]) {
			return false
		}
	}
	return true
}

// Intersects reports whether the two boxes share at least one point,
// i.e. every pair of corresponding components is comparable.
func (b Box) Intersects(other Box) bool {
	if len(b) != len(other) {
		return false
	}
	for i := range b {
		if !b[i].Comparable(other[i]) {
			return false
		}
	}
	return true
}

// Meet returns the componentwise intersection of two intersecting boxes.
// The second result is false if they are disjoint.
func (b Box) Meet(other Box) (Box, bool) {
	if len(b) != len(other) {
		return nil, false
	}
	m := make(Box, len(b))
	for i := range b {
		iv, ok := b[i].Meet(other[i])
		if !ok {
			return nil, false
		}
		m[i] = iv
	}
	return m, true
}

// IsUniverse reports whether every component is λ.
func (b Box) IsUniverse() bool {
	for _, iv := range b {
		if !iv.IsLambda() {
			return false
		}
	}
	return true
}

// IsUnit reports whether the box is a single point at the given depths.
func (b Box) IsUnit(depths []uint8) bool {
	for i, iv := range b {
		if !iv.IsUnit(depths[i]) {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the tuple of values lies inside the box.
func (b Box) ContainsPoint(values []uint64, depths []uint8) bool {
	for i, iv := range b {
		if !iv.ContainsValue(values[i], depths[i]) {
			return false
		}
	}
	return true
}

// Values extracts the tuple of a unit box.
func (b Box) Values(depths []uint8) []uint64 {
	vals := make([]uint64, len(b))
	b.ValuesInto(vals, depths)
	return vals
}

// ValuesInto extracts the tuple of a unit box into caller-provided
// storage, for hot paths that reuse the probe-point buffer.
func (b Box) ValuesInto(vals []uint64, depths []uint8) {
	for i, iv := range b {
		if !iv.IsUnit(depths[i]) {
			panic("dyadic: Values on non-unit box")
		}
		vals[i] = iv.Bits
	}
}

// Support returns the indices of the non-λ components (Definition 3.7).
func (b Box) Support() []int {
	var s []int
	for i, iv := range b {
		if !iv.IsLambda() {
			s = append(s, i)
		}
	}
	return s
}

// Project returns the projection of the box onto the attribute set given
// by keep (Definition E.2): components outside keep become λ.
func (b Box) Project(keep map[int]bool) Box {
	p := make(Box, len(b))
	for i, iv := range b {
		if keep[i] {
			p[i] = iv
		}
	}
	return p
}

// Volume returns the number of points covered by the box at the given
// depths. It panics if the total bit width exceeds 63 bits; use
// LogVolume for large spaces.
func (b Box) Volume(depths []uint8) uint64 {
	total := 0
	for i, iv := range b {
		total += int(depths[i] - iv.Len)
	}
	if total > 63 {
		panic("dyadic: Volume overflow; use LogVolume")
	}
	return 1 << uint(total)
}

// LogVolume returns log2 of the number of points covered by the box.
func (b Box) LogVolume(depths []uint8) int {
	total := 0
	for i, iv := range b {
		total += int(depths[i] - iv.Len)
	}
	return total
}

// FirstThick returns the index of the first component (in SAO order sao,
// a permutation of dimension indices) that is not yet at full depth, or
// -1 if the box is a unit box. This is the splitting dimension of
// Split-First-Thick-Dimension (paper §4.2.3).
func (b Box) FirstThick(sao []int, depths []uint8) int {
	for _, dim := range sao {
		if b[dim].Len < depths[dim] {
			return dim
		}
	}
	return -1
}

// SplitAt cuts the box into two halves along dimension dim by extending
// that component with a 0 and a 1 bit.
func (b Box) SplitAt(dim int) (Box, Box) {
	b0 := b.Clone()
	b1 := b.Clone()
	b0[dim] = b[dim].Child(0)
	b1[dim] = b[dim].Child(1)
	return b0, b1
}

// Key returns a compact byte-string key identifying the box, suitable for
// use as a map key.
func (b Box) Key() string {
	buf := make([]byte, 0, len(b)*9)
	for _, iv := range b {
		buf = append(buf, iv.Len,
			byte(iv.Bits), byte(iv.Bits>>8), byte(iv.Bits>>16), byte(iv.Bits>>24),
			byte(iv.Bits>>32), byte(iv.Bits>>40), byte(iv.Bits>>48), byte(iv.Bits>>56))
	}
	return string(buf)
}

// AppendLambdas appends n λ intervals to s, growing geometrically. It is
// the allocation primitive of box arenas: callers carve an n-component
// box out of the appended region and fill it in place. Growth
// reallocation is safe for boxes carved earlier — their slice headers
// keep the old backing array alive and intact.
func AppendLambdas(s []Interval, n int) []Interval {
	m := len(s)
	if cap(s)-m < n {
		grown := make([]Interval, m, 2*(m+n))
		copy(grown, s)
		s = grown
	}
	s = s[:m+n]
	clear(s[m:])
	return s
}

// String renders the box as ⟨c1, c2, …⟩ with binary-prefix components.
func (b Box) String() string {
	parts := make([]string, len(b))
	for i, iv := range b {
		parts[i] = iv.String()
	}
	return "⟨" + strings.Join(parts, ",") + "⟩"
}

// ParseBox parses the comma-separated binary-prefix notation, e.g.
// "01,λ,1". Spaces and the ⟨⟩ brackets are ignored.
func ParseBox(s string) (Box, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "⟨")
	s = strings.TrimSuffix(s, "⟩")
	parts := strings.Split(s, ",")
	b := make(Box, len(parts))
	for i, p := range parts {
		iv, err := ParseInterval(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		b[i] = iv
	}
	return b, nil
}

// MustParseBox is ParseBox that panics on error; for tests and fixtures.
func MustParseBox(s string) Box {
	b, err := ParseBox(s)
	if err != nil {
		panic(err)
	}
	return b
}

// IsPrefixBox reports whether p is a prefix box of b (Definition C.2):
// p equals b on a leading run of components, has a prefix of b's next
// component, and is λ afterwards.
func IsPrefixBox(p, b Box) bool {
	if len(p) != len(b) {
		return false
	}
	i := 0
	for ; i < len(p); i++ {
		if p[i] != b[i] {
			break
		}
	}
	if i == len(p) {
		return true
	}
	if !p[i].Contains(b[i]) {
		return false
	}
	for j := i + 1; j < len(p); j++ {
		if !p[j].IsLambda() {
			return false
		}
	}
	return true
}
