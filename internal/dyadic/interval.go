// Package dyadic implements the bitstring geometry underlying the Tetris
// join algorithm of Abo Khamis, Ngo, Ré and Rudra, "Joins via Geometric
// Resolutions: Worst-case and Beyond" (PODS 2015).
//
// A dyadic interval over a domain {0,1}^d is a binary string of length at
// most d (paper Definition 3.2). The string x represents every length-d
// string having x as a prefix; equivalently, the integer range
// [x·2^(d-|x|), (x+1)·2^(d-|x|) - 1]. The empty string λ is the whole
// domain and a length-d string is a single point.
//
// A dyadic box (Definition 3.3) is a tuple of dyadic intervals, one per
// attribute. Boxes ordered by componentwise prefix containment form the
// poset in which geometric resolution operates.
//
// All operations here are constant-time word operations, realizing the
// paper's observation that dyadic encoding reduces geometric reasoning to
// bitstring manipulation.
package dyadic

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxDepth is the largest supported bit depth of a dimension. Values are
// stored in uint64 with two bits of headroom so that interval arithmetic
// (such as computing one-past-the-end positions) cannot overflow.
const MaxDepth = 62

// Interval is a dyadic interval: the prefix Bits of length Len. The zero
// value is λ, the interval spanning the whole domain.
//
// Invariant: Len <= MaxDepth and Bits < 1<<Len (in particular Bits == 0
// when Len == 0), so intervals compare correctly with ==.
type Interval struct {
	Bits uint64
	Len  uint8
}

// Lambda is the wildcard interval covering the entire domain.
var Lambda = Interval{}

// NewInterval returns the dyadic interval with the given prefix bits and
// length. It panics if the invariant Bits < 1<<Len or Len <= MaxDepth is
// violated; use Check for non-panicking validation of untrusted input.
func NewInterval(bitsVal uint64, length uint8) Interval {
	iv := Interval{Bits: bitsVal, Len: length}
	if err := iv.Check(MaxDepth); err != nil {
		panic(err)
	}
	return iv
}

// Unit returns the unit (single point) interval for value v at depth d.
func Unit(v uint64, d uint8) Interval {
	if d > MaxDepth {
		panic(fmt.Sprintf("dyadic: depth %d exceeds MaxDepth", d))
	}
	if d < 64 && v >= 1<<d {
		panic(fmt.Sprintf("dyadic: value %d out of range for depth %d", v, d))
	}
	return Interval{Bits: v, Len: d}
}

// Check reports whether the interval is well formed for dimension depth d.
func (iv Interval) Check(d uint8) error {
	if iv.Len > MaxDepth {
		return fmt.Errorf("dyadic: interval length %d exceeds MaxDepth %d", iv.Len, MaxDepth)
	}
	if iv.Len > d {
		return fmt.Errorf("dyadic: interval length %d exceeds dimension depth %d", iv.Len, d)
	}
	if iv.Len < 64 && iv.Bits >= 1<<iv.Len {
		return fmt.Errorf("dyadic: interval bits %#x do not fit in %d bits", iv.Bits, iv.Len)
	}
	return nil
}

// IsLambda reports whether the interval is the wildcard λ.
func (iv Interval) IsLambda() bool { return iv.Len == 0 }

// IsUnit reports whether the interval is a single point at depth d.
func (iv Interval) IsUnit(d uint8) bool { return iv.Len == d }

// Contains reports whether iv contains other, i.e. whether iv (as a
// string) is a prefix of other. Every interval contains itself.
func (iv Interval) Contains(other Interval) bool {
	if iv.Len > other.Len {
		return false
	}
	return other.Bits>>(other.Len-iv.Len) == iv.Bits
}

// Comparable reports whether one of the two intervals contains the other.
// Two dyadic intervals either nest or are disjoint; Comparable is
// equivalent to "iv and other intersect".
func (iv Interval) Comparable(other Interval) bool {
	return iv.Contains(other) || other.Contains(iv)
}

// Disjoint reports whether the two intervals have no point in common.
func (iv Interval) Disjoint(other Interval) bool { return !iv.Comparable(other) }

// Meet returns the intersection of two comparable intervals — the longer
// of the two strings (the paper's y ∩ z in the resolvent definition). The
// second result is false if the intervals are disjoint.
func (iv Interval) Meet(other Interval) (Interval, bool) {
	if iv.Contains(other) {
		return other, true
	}
	if other.Contains(iv) {
		return iv, true
	}
	return Interval{}, false
}

// Child extends the prefix by one bit (0 or 1), halving the interval.
func (iv Interval) Child(bit uint64) Interval {
	if bit > 1 {
		panic("dyadic: Child bit must be 0 or 1")
	}
	return Interval{Bits: iv.Bits<<1 | bit, Len: iv.Len + 1}
}

// Parent removes the final bit of the prefix, doubling the interval.
// It panics on λ, which has no parent.
func (iv Interval) Parent() Interval {
	if iv.Len == 0 {
		panic("dyadic: λ has no parent")
	}
	return Interval{Bits: iv.Bits >> 1, Len: iv.Len - 1}
}

// LastBit returns the final bit of the prefix. It panics on λ.
func (iv Interval) LastBit() uint64 {
	if iv.Len == 0 {
		panic("dyadic: λ has no last bit")
	}
	return iv.Bits & 1
}

// Sibling flips the final bit of the prefix: the other half of the parent.
func (iv Interval) Sibling() Interval {
	if iv.Len == 0 {
		panic("dyadic: λ has no sibling")
	}
	return Interval{Bits: iv.Bits ^ 1, Len: iv.Len}
}

// Lo returns the smallest domain value in the interval at depth d.
func (iv Interval) Lo(d uint8) uint64 {
	return iv.Bits << (d - iv.Len)
}

// Hi returns the largest domain value in the interval at depth d.
func (iv Interval) Hi(d uint8) uint64 {
	return iv.Bits<<(d-iv.Len) | (1<<(d-iv.Len) - 1)
}

// Size returns the number of domain values in the interval at depth d.
func (iv Interval) Size(d uint8) uint64 { return 1 << (d - iv.Len) }

// ContainsValue reports whether domain value v lies in the interval at
// depth d.
func (iv Interval) ContainsValue(v uint64, d uint8) bool {
	return v>>(d-iv.Len) == iv.Bits
}

// CommonPrefix returns the longest dyadic interval containing both inputs.
func (iv Interval) CommonPrefix(other Interval) Interval {
	a, b := iv, other
	if a.Len > b.Len {
		a, b = b, a
	}
	// Truncate b to a's length, then strip disagreeing low bits.
	b = Interval{Bits: b.Bits >> (b.Len - a.Len), Len: a.Len}
	if a == b {
		return a
	}
	diff := a.Bits ^ b.Bits
	drop := uint8(bits.Len64(diff))
	return Interval{Bits: a.Bits >> drop, Len: a.Len - drop}
}

// String renders the interval as its binary prefix, or "λ".
func (iv Interval) String() string {
	if iv.Len == 0 {
		return "λ"
	}
	var sb strings.Builder
	for i := int(iv.Len) - 1; i >= 0; i-- {
		if iv.Bits>>uint(i)&1 == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// ParseInterval parses a binary-prefix string as produced by String.
// "λ", "" and "*" all denote the wildcard interval.
func ParseInterval(s string) (Interval, error) {
	if s == "" || s == "λ" || s == "*" {
		return Lambda, nil
	}
	if len(s) > MaxDepth {
		return Interval{}, fmt.Errorf("dyadic: interval %q longer than MaxDepth", s)
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			v = v << 1
		case '1':
			v = v<<1 | 1
		default:
			return Interval{}, fmt.Errorf("dyadic: invalid bit %q in interval %q", s[i], s)
		}
	}
	return Interval{Bits: v, Len: uint8(len(s))}, nil
}

// MustParseInterval is ParseInterval that panics on error; for tests and
// fixtures.
func MustParseInterval(s string) Interval {
	iv, err := ParseInterval(s)
	if err != nil {
		panic(err)
	}
	return iv
}
