package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// randRelation builds a random relation.
func randRelation(r *rand.Rand, name string, attrs []string, d uint8, n int) *relation.Relation {
	rel := relation.MustNewUniform(name, attrs, d)
	for i := 0; i < n; i++ {
		vals := make([]uint64, len(attrs))
		for j := range vals {
			vals[j] = uint64(r.Intn(1 << d))
		}
		rel.MustInsert(vals...)
	}
	return rel
}

// queriesUnderTest builds a family of structurally diverse small queries
// over random data.
func queriesUnderTest(r *rand.Rand, d uint8, n int) map[string]*join.Query {
	qs := map[string]*join.Query{}

	// Path: R(A,B) ⋈ S(B,C) ⋈ T(C,D)  — α-acyclic, treewidth 1.
	qs["path"] = join.MustNewQuery(
		join.Atom{Relation: randRelation(r, "R", []string{"X", "Y"}, d, n), Vars: []string{"A", "B"}},
		join.Atom{Relation: randRelation(r, "S", []string{"X", "Y"}, d, n), Vars: []string{"B", "C"}},
		join.Atom{Relation: randRelation(r, "T", []string{"X", "Y"}, d, n), Vars: []string{"C", "D"}},
	)
	// Triangle: cyclic, treewidth 2.
	qs["triangle"] = join.MustNewQuery(
		join.Atom{Relation: randRelation(r, "R", []string{"X", "Y"}, d, n), Vars: []string{"A", "B"}},
		join.Atom{Relation: randRelation(r, "S", []string{"X", "Y"}, d, n), Vars: []string{"B", "C"}},
		join.Atom{Relation: randRelation(r, "T", []string{"X", "Y"}, d, n), Vars: []string{"A", "C"}},
	)
	// Star: R(A,B) ⋈ S(A,C) ⋈ T(A,D) — α-acyclic.
	qs["star"] = join.MustNewQuery(
		join.Atom{Relation: randRelation(r, "R", []string{"X", "Y"}, d, n), Vars: []string{"A", "B"}},
		join.Atom{Relation: randRelation(r, "S", []string{"X", "Y"}, d, n), Vars: []string{"A", "C"}},
		join.Atom{Relation: randRelation(r, "T", []string{"X", "Y"}, d, n), Vars: []string{"A", "D"}},
	)
	// Bowtie with unary endpoints: R(A) ⋈ S(A,B) ⋈ T(B).
	qs["bowtie"] = join.MustNewQuery(
		join.Atom{Relation: randRelation(r, "R", []string{"X"}, d, n), Vars: []string{"A"}},
		join.Atom{Relation: randRelation(r, "S", []string{"X", "Y"}, d, n), Vars: []string{"A", "B"}},
		join.Atom{Relation: randRelation(r, "T", []string{"X"}, d, n), Vars: []string{"B"}},
	)
	// Ternary atom: R(A,B,C) ⋈ S(B,C,D) — α-acyclic.
	qs["ternary"] = join.MustNewQuery(
		join.Atom{Relation: randRelation(r, "R", []string{"X", "Y", "Z"}, d, n), Vars: []string{"A", "B", "C"}},
		join.Atom{Relation: randRelation(r, "S", []string{"X", "Y", "Z"}, d, n), Vars: []string{"B", "C", "D"}},
	)
	// Four-cycle: treewidth 2, cyclic.
	qs["fourcycle"] = join.MustNewQuery(
		join.Atom{Relation: randRelation(r, "R", []string{"X", "Y"}, d, n), Vars: []string{"A", "B"}},
		join.Atom{Relation: randRelation(r, "S", []string{"X", "Y"}, d, n), Vars: []string{"B", "C"}},
		join.Atom{Relation: randRelation(r, "T", []string{"X", "Y"}, d, n), Vars: []string{"C", "D"}},
		join.Atom{Relation: randRelation(r, "U", []string{"X", "Y"}, d, n), Vars: []string{"D", "A"}},
	)
	return qs
}

// equalTuples compares tuple lists treating nil and empty as equal.
func equalTuples(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestAllAlgorithmsAgree is the central cross-validation: on each query
// shape, nested loop, hash join, generic join, leapfrog, (yannakakis
// where applicable) and all four Tetris modes produce identical output.
func TestAllAlgorithmsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 6; trial++ {
		d := uint8(2)
		n := 3 + r.Intn(12)
		for name, q := range queriesUnderTest(r, d, n) {
			want, err := NestedLoop(q)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			check := func(algo string, got [][]uint64, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("trial %d %s/%s: %v", trial, name, algo, err)
				}
				if !equalTuples(got, want) {
					t.Fatalf("trial %d %s/%s: got %d tuples, want %d\n got: %v\nwant: %v",
						trial, name, algo, len(got), len(want), got, want)
				}
			}
			hj, _, err := HashJoin(q)
			check("hashjoin", hj, err)
			gj, err := GenericJoin(q, nil)
			check("genericjoin", gj, err)
			lf, err := Leapfrog(q, nil)
			check("leapfrog", lf, err)
			// Randomized variable orders for the WCOJ algorithms.
			order := r.Perm(len(q.Vars()))
			gj, err = GenericJoin(q, order)
			check("genericjoin-perm", gj, err)
			lf, err = Leapfrog(q, order)
			check("leapfrog-perm", lf, err)
			if _, acyclic := q.Hypergraph().GYO(); acyclic {
				y, err := Yannakakis(q)
				check("yannakakis", y, err)
			}
			for _, mode := range []core.Mode{core.Reloaded, core.Preloaded, core.PreloadedLB, core.ReloadedLB} {
				res, err := join.Execute(q, join.Options{Mode: mode})
				if err != nil {
					t.Fatalf("trial %d %s/%v: %v", trial, name, mode, err)
				}
				got := res.Tuples
				sortTuples(got)
				check(mode.String(), got, nil)
			}
		}
	}
}

func TestYannakakisRejectsCyclic(t *testing.T) {
	r := rand.New(rand.NewSource(56))
	q := queriesUnderTest(r, 2, 5)["triangle"]
	if _, err := Yannakakis(q); err == nil {
		t.Error("yannakakis accepted a cyclic query")
	}
}

func TestHashJoinPeakBlowupOnAGMInstance(t *testing.T) {
	// The classic AGM-hard triangle instance: R=S=T = {0}×[m] ∪ [m]×{0}.
	// Binary plans materialize Θ(m²) intermediates; the output is Θ(m).
	const m = 64
	mk := func(name string) *relation.Relation {
		rel := relation.MustNewUniform(name, []string{"X", "Y"}, 8)
		for i := uint64(0); i < m; i++ {
			rel.MustInsert(0, i)
			rel.MustInsert(i, 0)
		}
		return rel
	}
	q := join.MustNewQuery(
		join.Atom{Relation: mk("R"), Vars: []string{"A", "B"}},
		join.Atom{Relation: mk("S"), Vars: []string{"B", "C"}},
		join.Atom{Relation: mk("T"), Vars: []string{"A", "C"}},
	)
	out, peak, err := HashJoin(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3*m-2 {
		t.Errorf("output size %d, want %d", len(out), 3*m-2)
	}
	if peak < m*m {
		t.Errorf("peak intermediate %d, expected at least %d", peak, m*m)
	}
	// Generic join and leapfrog produce the same output without the
	// blowup (their work is output-sensitive here, not checked directly).
	gj, err := GenericJoin(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gj, out) {
		t.Error("generic join disagrees on AGM instance")
	}
}

func TestGenericJoinOrderValidation(t *testing.T) {
	r := rand.New(rand.NewSource(57))
	q := queriesUnderTest(r, 2, 4)["path"]
	if _, err := GenericJoin(q, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := Leapfrog(q, []int{0, 0, 1, 2}); err == nil {
		t.Error("non-permutation accepted")
	}
}

func TestNestedLoopSizeGuard(t *testing.T) {
	big := relation.MustNewUniform("R", []string{"X", "Y"}, 16)
	q := join.MustNewQuery(join.Atom{Relation: big, Vars: []string{"A", "B"}})
	if _, err := NestedLoop(q); err == nil {
		t.Error("nested loop accepted a huge domain")
	}
}

func TestSingleAtomQuery(t *testing.T) {
	r := rand.New(rand.NewSource(58))
	rel := randRelation(r, "R", []string{"X", "Y"}, 3, 10)
	q := join.MustNewQuery(join.Atom{Relation: rel, Vars: []string{"A", "B"}})
	want := make([][]uint64, 0, rel.Len())
	for _, t0 := range rel.Tuples() {
		want = append(want, append([]uint64(nil), t0...))
	}
	sortTuples(want)
	got, _, err := HashJoin(q)
	if err != nil {
		t.Fatal(err)
	}
	if !equalTuples(got, want) {
		t.Error("hash join on single atom")
	}
	y, err := Yannakakis(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(y, want) {
		t.Error("yannakakis on single atom")
	}
	res, err := join.Execute(q, join.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotT := res.Tuples
	sortTuples(gotT)
	if !reflect.DeepEqual(gotT, want) {
		t.Error("tetris on single atom")
	}
}

func TestDisconnectedQueryCrossProduct(t *testing.T) {
	// R(A) ⋈ S(B): a cross product; checks disconnected handling in
	// every algorithm.
	ra := relation.MustNewUniform("R", []string{"X"}, 2)
	ra.MustInsert(1)
	ra.MustInsert(2)
	sb := relation.MustNewUniform("S", []string{"X"}, 2)
	sb.MustInsert(0)
	sb.MustInsert(3)
	q := join.MustNewQuery(
		join.Atom{Relation: ra, Vars: []string{"A"}},
		join.Atom{Relation: sb, Vars: []string{"B"}},
	)
	want := [][]uint64{{1, 0}, {1, 3}, {2, 0}, {2, 3}}
	nl, err := NestedLoop(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nl, want) {
		t.Fatalf("nested loop: %v", nl)
	}
	for algo, f := range map[string]func() ([][]uint64, error){
		"hash":       func() ([][]uint64, error) { o, _, e := HashJoin(q); return o, e },
		"generic":    func() ([][]uint64, error) { return GenericJoin(q, nil) },
		"leapfrog":   func() ([][]uint64, error) { return Leapfrog(q, nil) },
		"yannakakis": func() ([][]uint64, error) { return Yannakakis(q) },
		"tetris": func() ([][]uint64, error) {
			res, e := join.Execute(q, join.Options{})
			if e != nil {
				return nil, e
			}
			sortTuples(res.Tuples)
			return res.Tuples, nil
		},
	} {
		got, err := f()
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !equalTuples(got, want) {
			t.Errorf("%s: %v, want %v", algo, got, want)
		}
	}
}

func TestEmptyRelationShortCircuits(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	rel := randRelation(r, "R", []string{"X", "Y"}, 2, 6)
	empty := relation.MustNewUniform("E", []string{"X", "Y"}, 2)
	q := join.MustNewQuery(
		join.Atom{Relation: rel, Vars: []string{"A", "B"}},
		join.Atom{Relation: empty, Vars: []string{"B", "C"}},
	)
	for algo, f := range map[string]func() ([][]uint64, error){
		"hash":       func() ([][]uint64, error) { o, _, e := HashJoin(q); return o, e },
		"generic":    func() ([][]uint64, error) { return GenericJoin(q, nil) },
		"leapfrog":   func() ([][]uint64, error) { return Leapfrog(q, nil) },
		"yannakakis": func() ([][]uint64, error) { return Yannakakis(q) },
	} {
		got, err := f()
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(got) != 0 {
			t.Errorf("%s: expected empty output, got %v", algo, got)
		}
	}
}
