// Package baseline implements the classical join algorithms that the
// Tetris paper recovers or compares against: Yannakakis' algorithm for
// α-acyclic queries [73], the worst-case optimal Generic Join [52] and
// Leapfrog Triejoin [72], binary hash join plans, and a nested-loop
// evaluator used as ground truth in tests.
//
// All evaluators take a join.Query and return the output tuples over the
// query's variables in first-occurrence order, sorted lexicographically
// and deduplicated, so results are directly comparable across algorithms
// (and with the Tetris engine).
package baseline

import (
	"sort"

	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// sortTuples orders tuples lexicographically in place.
func sortTuples(ts [][]uint64) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// dedupe removes adjacent duplicates from sorted tuples.
func dedupe(ts [][]uint64) [][]uint64 {
	out := ts[:0]
	for i, t := range ts {
		if i > 0 {
			prev := ts[i-1]
			same := true
			for k := range t {
				if t[k] != prev[k] {
					same = false
					break
				}
			}
			if same {
				continue
			}
		}
		out = append(out, t)
	}
	return out
}

// tupleKey is a comparable projection of a tuple: up to four join-key
// columns inline and any overflow packed into a string. Join keys are
// almost always narrow, so building one is allocation-free in the
// common case — unlike the former per-row string encoding, which
// dominated fuzz-iteration time on wide tuples. Keys of different
// widths never share a map (pos is fixed per hashJoin/semijoin call),
// so zero padding in v is unambiguous.
type tupleKey struct {
	n    int
	v    [4]uint64
	rest string
}

// key projects a tuple onto the given positions as a comparable map key.
func key(t []uint64, pos []int) tupleKey {
	var k tupleKey
	k.n = len(pos)
	inline := min(len(pos), len(k.v))
	for i := 0; i < inline; i++ {
		k.v[i] = t[pos[i]]
	}
	if len(pos) > inline {
		buf := make([]byte, 0, (len(pos)-inline)*8)
		for _, p := range pos[inline:] {
			v := t[p]
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
				byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
		}
		k.rest = string(buf)
	}
	return k
}

// table is an intermediate relation over query variable positions.
type table struct {
	vars []int // query variable positions, in column order
	rows [][]uint64
}

// tableFromAtom materializes an atom as a table over its variables'
// query positions.
func tableFromAtom(q *join.Query, a join.Atom) table {
	vars := make([]int, len(a.Vars))
	for i, v := range a.Vars {
		vars[i] = q.VarIndex(v)
	}
	rows := make([][]uint64, 0, a.Relation.Len())
	for _, t := range a.Relation.Tuples() {
		rows = append(rows, append([]uint64(nil), t...))
	}
	return table{vars: vars, rows: rows}
}

// varCols returns, for each query position shared between t and other,
// the column pairs (tCol, otherCol).
func sharedCols(t, other table) (tc, oc []int) {
	pos := map[int]int{}
	for i, v := range t.vars {
		pos[v] = i
	}
	for j, v := range other.vars {
		if i, ok := pos[v]; ok {
			tc = append(tc, i)
			oc = append(oc, j)
		}
	}
	return tc, oc
}

// hashJoin joins two tables on their shared variables.
func hashJoin(a, b table) table {
	ac, bc := sharedCols(a, b)
	// Output columns: a's columns then b's new columns.
	var extraB []int
	seen := map[int]bool{}
	for _, v := range a.vars {
		seen[v] = true
	}
	outVars := append([]int(nil), a.vars...)
	for j, v := range b.vars {
		if !seen[v] {
			extraB = append(extraB, j)
			outVars = append(outVars, v)
		}
	}
	idx := map[tupleKey][][]uint64{}
	for _, row := range b.rows {
		k := key(row, bc)
		idx[k] = append(idx[k], row)
	}
	var rows [][]uint64
	for _, row := range a.rows {
		for _, match := range idx[key(row, ac)] {
			out := make([]uint64, 0, len(outVars))
			out = append(out, row...)
			for _, j := range extraB {
				out = append(out, match[j])
			}
			rows = append(rows, out)
		}
	}
	return table{vars: outVars, rows: rows}
}

// semijoin keeps the rows of a with a matching row in b on shared
// variables.
func semijoin(a, b table) table {
	ac, bc := sharedCols(a, b)
	idx := map[tupleKey]bool{}
	for _, row := range b.rows {
		idx[key(row, bc)] = true
	}
	var rows [][]uint64
	for _, row := range a.rows {
		if idx[key(row, ac)] {
			rows = append(rows, row)
		}
	}
	return table{vars: a.vars, rows: rows}
}

// project reorders/projects a table's rows onto the query variable order
// given by positions (which must all be present in t.vars) and dedupes.
func (t table) project(positions []int) [][]uint64 {
	col := map[int]int{}
	for i, v := range t.vars {
		col[v] = i
	}
	out := make([][]uint64, 0, len(t.rows))
	for _, row := range t.rows {
		o := make([]uint64, len(positions))
		for i, p := range positions {
			o[i] = row[col[p]]
		}
		out = append(out, o)
	}
	sortTuples(out)
	return dedupe(out)
}

// identity positions 0..n-1.
func allPositions(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// reorderTuplesByVarOrder sorts atom tuples by a global variable order.
func reorderAtomTuples(q *join.Query, a join.Atom, varOrder []int) ([]relation.Tuple, []int) {
	rank := make([]int, len(q.Vars()))
	for r, pos := range varOrder {
		rank[pos] = r
	}
	// Relation attribute positions sorted by the rank of their variable.
	perm := allPositions(len(a.Vars))
	sort.Slice(perm, func(i, j int) bool {
		return rank[q.VarIndex(a.Vars[perm[i]])] < rank[q.VarIndex(a.Vars[perm[j]])]
	})
	tuples, err := a.Relation.Reordered(perm)
	if err != nil {
		panic(err) // perm is a permutation by construction
	}
	// varAt[k] = query variable position of the k-th reordered column.
	varAt := make([]int, len(perm))
	for k, p := range perm {
		varAt[k] = q.VarIndex(a.Vars[p])
	}
	return tuples, varAt
}
