package baseline

// This file is the result-set comparison API shared by the baseline
// tests and the differential fuzzing oracle (internal/fuzz): canonical
// ordering plus first-divergence reporting, so a failing cross-engine
// check can point at the exact tuple where two engines part ways.

// SortTuples orders tuples lexicographically in place, the canonical
// order every evaluator in this package reports. Sorting an engine's
// output with it makes results directly comparable across algorithms.
func SortTuples(ts [][]uint64) { sortTuples(ts) }

// Divergence locates the first difference between two sorted tuple
// lists.
type Divergence struct {
	// Index is the position of the first divergent tuple.
	Index int
	// Got and Want are the tuples at Index (nil past the shorter list).
	Got, Want []uint64
}

// FirstDivergence compares two sorted tuple lists and returns the first
// position where they differ, or nil when they are equal. Inputs must
// already be in SortTuples order.
func FirstDivergence(got, want [][]uint64) *Divergence {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		a, b := got[i], want[i]
		same := len(a) == len(b)
		if same {
			for k := range a {
				if a[k] != b[k] {
					same = false
					break
				}
			}
		}
		if !same {
			return &Divergence{Index: i, Got: a, Want: b}
		}
	}
	if len(got) != len(want) {
		d := &Divergence{Index: n}
		if n < len(got) {
			d.Got = got[n]
		}
		if n < len(want) {
			d.Want = want[n]
		}
		return d
	}
	return nil
}
