package baseline

import (
	"sort"

	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// lfIter is a Leapfrog Triejoin trie iterator over an atom's tuples in a
// global variable order (Veldhuizen [72]). It supports the standard
// open/up/next/seek interface; positions are maintained as sorted-array
// ranges per trie level.
type lfIter struct {
	tuples []relation.Tuple
	varAt  []int
	// Per open level: the tuple range of the current prefix and the
	// current position within it.
	los, his, pos []int
	depth         int // number of open levels
}

func newLFIter(tuples []relation.Tuple, varAt []int) *lfIter {
	return &lfIter{tuples: tuples, varAt: varAt}
}

// rangeAt returns the range of tuples matching the prefix above level
// depth-1.
func (it *lfIter) parentRange() (int, int) {
	if it.depth == 1 {
		return 0, len(it.tuples)
	}
	return it.los[it.depth-2], it.his[it.depth-2]
}

// open descends into the first child at the next level.
func (it *lfIter) open() {
	it.depth++
	plo, _ := it.parentRange()
	if it.depth > len(it.los) {
		it.los = append(it.los, 0)
		it.his = append(it.his, 0)
		it.pos = append(it.pos, 0)
	}
	it.setPosition(plo)
}

// setPosition positions the current level at the run of tuples starting
// at index i (which must lie in the parent range).
func (it *lfIter) setPosition(i int) {
	k := it.depth - 1
	_, phi := it.parentRange()
	it.pos[k] = i
	if i >= phi {
		it.los[k], it.his[k] = phi, phi
		return
	}
	v := it.tuples[i][k]
	end := i + sort.Search(phi-i, func(x int) bool { return it.tuples[i+x][k] > v })
	it.los[k], it.his[k] = i, end
}

// up leaves the current level.
func (it *lfIter) up() { it.depth-- }

// atEnd reports whether the current level is exhausted.
func (it *lfIter) atEnd() bool {
	_, phi := it.parentRange()
	return it.pos[it.depth-1] >= phi
}

// keyAt returns the current key of the open level.
func (it *lfIter) key() uint64 { return it.tuples[it.pos[it.depth-1]][it.depth-1] }

// next advances to the following distinct key at this level.
func (it *lfIter) next() { it.setPosition(it.his[it.depth-1]) }

// seek advances to the first key ≥ v at this level.
func (it *lfIter) seek(v uint64) {
	k := it.depth - 1
	plo, phi := it.parentRange()
	start := it.pos[k]
	if start < plo {
		start = plo
	}
	i := start + sort.Search(phi-start, func(x int) bool { return it.tuples[start+x][k] >= v })
	it.setPosition(i)
}

// Leapfrog evaluates the query with Leapfrog Triejoin [72]: a worst-case
// optimal join that unifies per-variable sorted iterators by repeated
// seeking to the maximum current key. varOrder is as in GenericJoin.
func Leapfrog(q *join.Query, varOrder []int) ([][]uint64, error) {
	n := len(q.Vars())
	if varOrder == nil {
		varOrder = allPositions(n)
	}
	if err := checkOrder(varOrder, n); err != nil {
		return nil, err
	}
	iters := make([]*lfIter, len(q.Atoms()))
	for i, a := range q.Atoms() {
		tuples, varAt := reorderAtomTuples(q, a, varOrder)
		iters[i] = newLFIter(tuples, varAt)
	}
	assignment := make([]uint64, n)
	var out [][]uint64

	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]uint64(nil), assignment...))
			return
		}
		v := varOrder[k]
		var active []*lfIter
		for _, it := range iters {
			if it.depth < len(it.varAt) && it.varAt[it.depth] == v {
				active = append(active, it)
			}
		}
		if len(active) == 0 {
			for val := uint64(0); val < 1<<q.Depths()[v]; val++ {
				assignment[v] = val
				rec(k + 1)
			}
			return
		}
		for _, it := range active {
			it.open()
		}
		// Leapfrog search: all active iterators at the same key.
		exhausted := false
		for _, it := range active {
			if it.atEnd() {
				exhausted = true
			}
		}
		if !exhausted {
			p := 0 // index of iterator with smallest key after sorting step
			sort.Slice(active, func(i, j int) bool { return active[i].key() < active[j].key() })
			maxKey := active[len(active)-1].key()
			for {
				it := active[p]
				if it.key() == maxKey {
					// Match: all iterators agree.
					assignment[v] = maxKey
					rec(k + 1)
					it.next()
					if it.atEnd() {
						break
					}
					maxKey = it.key()
					p = (p + 1) % len(active)
					continue
				}
				it.seek(maxKey)
				if it.atEnd() {
					break
				}
				maxKey = it.key()
				p = (p + 1) % len(active)
			}
		}
		for _, it := range active {
			it.up()
		}
	}
	rec(0)
	sortTuples(out)
	return dedupe(out), nil
}
