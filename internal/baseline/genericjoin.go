package baseline

import (
	"sort"

	"tetrisjoin/internal/join"
	"tetrisjoin/internal/relation"
)

// gjTrie is a sorted-array trie over an atom's tuples in a global
// variable order: level k branches on the k-th attribute in that order.
type gjTrie struct {
	tuples []relation.Tuple
	varAt  []int // query variable position per level
}

// childRange returns the sub-range of [lo,hi) whose level-k value is v.
func (t *gjTrie) childRange(lo, hi, k int, v uint64) (int, int) {
	a := lo + sort.Search(hi-lo, func(i int) bool { return t.tuples[lo+i][k] >= v })
	b := lo + sort.Search(hi-lo, func(i int) bool { return t.tuples[lo+i][k] > v })
	return a, b
}

// distinct returns the distinct level-k values within [lo,hi).
func (t *gjTrie) distinct(lo, hi, k int) []uint64 {
	var out []uint64
	for i := lo; i < hi; {
		v := t.tuples[i][k]
		out = append(out, v)
		i += sort.Search(hi-i, func(x int) bool { return t.tuples[i+x][k] > v })
	}
	return out
}

// GenericJoin evaluates the query with the attribute-at-a-time worst-case
// optimal algorithm of Ngo–Ré–Rudra ("skew strikes back", [52]): for each
// variable in a global order, the candidate values are the intersection
// of the projections of all relations containing that variable,
// enumerated from the smallest candidate set.
//
// varOrder gives the global variable order as positions into q.Vars();
// nil means first-occurrence order.
func GenericJoin(q *join.Query, varOrder []int) ([][]uint64, error) {
	n := len(q.Vars())
	if varOrder == nil {
		varOrder = allPositions(n)
	}
	if err := checkOrder(varOrder, n); err != nil {
		return nil, err
	}
	tries := make([]*gjTrie, len(q.Atoms()))
	for i, a := range q.Atoms() {
		tuples, varAt := reorderAtomTuples(q, a, varOrder)
		tries[i] = &gjTrie{tuples: tuples, varAt: varAt}
	}
	// state per atom: current range and level.
	type state struct{ lo, hi, level int }
	states := make([]state, len(tries))
	for i, tr := range tries {
		states[i] = state{0, len(tr.tuples), 0}
	}
	assignment := make([]uint64, n)
	var out [][]uint64

	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]uint64(nil), assignment...))
			return
		}
		v := varOrder[k]
		// Atoms whose next level binds v.
		var active []int
		for i, tr := range tries {
			if states[i].level < len(tr.varAt) && tr.varAt[states[i].level] == v {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			// Variable unconstrained at this point (cannot happen for
			// connected queries; handle by enumerating its domain).
			for val := uint64(0); val < 1<<q.Depths()[v]; val++ {
				assignment[v] = val
				rec(k + 1)
			}
			return
		}
		// Candidates: distinct values of the smallest active atom.
		bestIdx := active[0]
		for _, i := range active[1:] {
			if states[i].hi-states[i].lo < states[bestIdx].hi-states[bestIdx].lo {
				bestIdx = i
			}
		}
		st := states[bestIdx]
		candidates := tries[bestIdx].distinct(st.lo, st.hi, st.level)
		for _, val := range candidates {
			ok := true
			saved := make([]state, len(active))
			for ai, i := range active {
				saved[ai] = states[i]
				lo, hi := tries[i].childRange(states[i].lo, states[i].hi, states[i].level, val)
				if lo == hi {
					ok = false
					// Restore the ones already advanced.
					for bi := 0; bi <= ai; bi++ {
						states[active[bi]] = saved[bi]
					}
					break
				}
				states[i] = state{lo, hi, states[i].level + 1}
			}
			if !ok {
				continue
			}
			assignment[v] = val
			rec(k + 1)
			for ai, i := range active {
				states[i] = saved[ai]
			}
		}
	}
	rec(0)
	sortTuples(out)
	return dedupe(out), nil
}

func checkOrder(order []int, n int) error {
	if len(order) != n {
		return errBadOrder(order, n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			return errBadOrder(order, n)
		}
		seen[v] = true
	}
	return nil
}

type orderError struct {
	order []int
	n     int
}

func errBadOrder(order []int, n int) error { return &orderError{order: order, n: n} }

func (e *orderError) Error() string {
	return "baseline: variable order is not a permutation of the query variables"
}
