package baseline

import (
	"fmt"

	"tetrisjoin/internal/join"
)

// NestedLoop evaluates the query by enumerating every point of the
// variable domain product and testing membership in all relations. It is
// exponential in the total bit width and exists purely as ground truth
// for small tests.
func NestedLoop(q *join.Query) ([][]uint64, error) {
	totalBits := 0
	for _, d := range q.Depths() {
		totalBits += int(d)
	}
	if totalBits > 24 {
		return nil, fmt.Errorf("baseline: nested loop limited to 24 total bits, query has %d", totalBits)
	}
	n := len(q.Vars())
	point := make([]uint64, n)
	var out [][]uint64
	var rec func(dim int)
	rec = func(dim int) {
		if dim == n {
			for _, a := range q.Atoms() {
				proj := make([]uint64, len(a.Vars))
				for i, v := range a.Vars {
					proj[i] = point[q.VarIndex(v)]
				}
				if !a.Relation.Contains(proj...) {
					return
				}
			}
			out = append(out, append([]uint64(nil), point...))
			return
		}
		for v := uint64(0); v < 1<<q.Depths()[dim]; v++ {
			point[dim] = v
			rec(dim + 1)
		}
	}
	rec(0)
	return out, nil
}

// HashJoin evaluates the query with a left-deep binary hash join plan in
// atom order. On AGM-hard instances its intermediate results blow up to
// Θ(N²) where worst-case optimal algorithms stay at O(N^{3/2}) — the
// comparison behind Table 1's "arbitrary" row.
//
// The returned count is the peak intermediate row count, the quantity
// that separates binary plans from WCOJ algorithms.
func HashJoin(q *join.Query) (tuples [][]uint64, peakIntermediate int, err error) {
	atoms := q.Atoms()
	acc := tableFromAtom(q, atoms[0])
	peak := len(acc.rows)
	for _, a := range atoms[1:] {
		acc = hashJoin(acc, tableFromAtom(q, a))
		if len(acc.rows) > peak {
			peak = len(acc.rows)
		}
	}
	return acc.project(allPositions(len(q.Vars()))), peak, nil
}
