package baseline

import (
	"fmt"

	"tetrisjoin/internal/join"
)

// Yannakakis evaluates an α-acyclic query with Yannakakis' algorithm
// [73]: build a join tree by GYO elimination, run a bottom-up then
// top-down semijoin reduction (after which every intermediate join is
// output-bounded), and materialize the join up the tree. Returns an
// error if the query is not α-acyclic.
func Yannakakis(q *join.Query) ([][]uint64, error) {
	parent, order, err := joinTree(q)
	if err != nil {
		return nil, err
	}
	tables := make([]table, len(q.Atoms()))
	for i, a := range q.Atoms() {
		tables[i] = tableFromAtom(q, a)
	}
	// order lists atom indices leaves-first (GYO removal order); parents
	// always come later than their children... not necessarily, but each
	// node's parent is distinct and processing in removal order
	// guarantees children are reduced before their parent consumes them.
	//
	// Bottom-up: parent ⋉= child.
	for _, i := range order {
		if parent[i] >= 0 {
			tables[parent[i]] = semijoin(tables[parent[i]], tables[i])
		}
	}
	// Top-down: child ⋉= parent.
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		if parent[i] >= 0 {
			tables[i] = semijoin(tables[i], tables[parent[i]])
		}
	}
	// Materialize bottom-up: parent ⋈= child.
	for _, i := range order {
		if parent[i] >= 0 {
			tables[parent[i]] = hashJoin(tables[parent[i]], tables[i])
		}
	}
	root := order[len(order)-1]
	res := tables[root]
	// The root may not mention isolated variables (possible only for
	// disconnected queries whose components GYO eliminated separately);
	// join in any remaining components.
	have := map[int]bool{}
	for _, v := range res.vars {
		have[v] = true
	}
	for _, i := range order {
		if parent[i] == -1 && i != root {
			res = hashJoin(res, tables[i])
			for _, v := range tables[i].vars {
				have[v] = true
			}
		}
	}
	if len(have) != len(q.Vars()) {
		return nil, fmt.Errorf("baseline: yannakakis did not cover all variables")
	}
	return res.project(allPositions(len(q.Vars()))), nil
}

// joinTree builds a join tree over the query's atoms via GYO
// elimination: an atom removed because its remaining variables are
// covered by another atom attaches to that atom. It returns parent
// pointers (-1 for roots) and the removal order, or an error when the
// query is cyclic.
func joinTree(q *join.Query) (parent []int, order []int, err error) {
	atoms := q.Atoms()
	m := len(atoms)
	// Variable sets as masks over query positions (≤ 62 variables).
	if len(q.Vars()) > 62 {
		return nil, nil, fmt.Errorf("baseline: too many variables")
	}
	masks := make([]uint64, m)
	for i, a := range atoms {
		for _, v := range a.Vars {
			masks[i] |= 1 << uint(q.VarIndex(v))
		}
	}
	parent = make([]int, m)
	for i := range parent {
		parent[i] = -1
	}
	removed := make([]bool, m)
	remaining := m
	for remaining > 1 {
		progress := false
		// Count, for each variable, the live atoms containing it.
		varCount := map[int]int{}
		for i := 0; i < m; i++ {
			if removed[i] {
				continue
			}
			for v := 0; v < len(q.Vars()); v++ {
				if masks[i]>>uint(v)&1 == 1 {
					varCount[v]++
				}
			}
		}
		for i := 0; i < m && remaining > 1; i++ {
			if removed[i] {
				continue
			}
			// Strip private variables (appearing only in atom i).
			core := uint64(0)
			for v := 0; v < len(q.Vars()); v++ {
				if masks[i]>>uint(v)&1 == 1 && varCount[v] > 1 {
					core |= 1 << uint(v)
				}
			}
			// Find another live atom covering the core.
			for j := 0; j < m; j++ {
				if j == i || removed[j] {
					continue
				}
				if core&^masks[j] == 0 {
					parent[i] = j
					removed[i] = true
					order = append(order, i)
					remaining--
					progress = true
					break
				}
			}
		}
		if !progress {
			return nil, nil, fmt.Errorf("baseline: query is not α-acyclic; yannakakis does not apply")
		}
	}
	for i := 0; i < m; i++ {
		if !removed[i] {
			order = append(order, i)
		}
	}
	return parent, order, nil
}
