module tetrisjoin

go 1.22
