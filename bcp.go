package tetrisjoin

import (
	"math/big"

	"tetrisjoin/internal/agm"
	"tetrisjoin/internal/catalog"
	"tetrisjoin/internal/cert"
	"tetrisjoin/internal/core"
	"tetrisjoin/internal/join"
	"tetrisjoin/internal/klee"
)

// BCPOptions configures a raw box cover problem run; it mirrors
// core.Options.
type BCPOptions = core.Options

// BCPResult is the outcome of a raw box cover problem run.
type BCPResult = core.Result

// SolveBCP lists all points of the depth-indexed space not covered by any
// of the boxes — the box cover problem of Definition 3.4 — using the
// Tetris variant selected in opts.
func SolveBCP(depths []uint8, boxes []Box, opts BCPOptions) (*BCPResult, error) {
	o, err := core.NewBoxOracle(depths, boxes)
	if err != nil {
		return nil, err
	}
	return core.Run(o, opts)
}

// CoversSpace decides the Boolean box cover problem (Definition 3.5) —
// equivalently Klee's measure problem over the Boolean semiring
// (Corollary F.8) — in Õ(|B|^{n/2}) via the load-balanced variant. The
// returned point is nil when the space is covered.
func CoversSpace(depths []uint8, boxes []Box) (covered bool, uncovered []uint64, err error) {
	rep, err := klee.CoversSpace(depths, boxes)
	if err != nil {
		return false, nil, err
	}
	return rep.Covered, rep.Uncovered, nil
}

// JoinSize returns the exact number of output tuples of the query
// without materializing them: the counting variant of Tetris sums whole
// uncovered sub-spaces at once, so joins with astronomically many results
// are counted cheaply. Like Join it is one-shot (a throwaway catalog);
// services should count through a long-lived Catalog's prepared
// statements instead.
func JoinSize(q *Query, opts Options) (*big.Int, error) {
	count, _, err := catalog.New().CountQuery(q, opts)
	return count, err
}

// CountUncovered returns the exact number of points of the space not
// covered by any box — the counting form of the box cover problem.
func CountUncovered(depths []uint8, boxes []Box) (*big.Int, error) {
	rep, err := core.CountUncovered(depths, boxes, core.Options{})
	if err != nil {
		return nil, err
	}
	return rep.Uncovered, nil
}

// MeasureUnion computes the exact measure (point count) of the union of
// the boxes — Klee's measure problem over the counting semiring — in any
// dimension.
func MeasureUnion(depths []uint8, boxes []Box) (*big.Int, error) {
	return klee.MeasureExact(depths, boxes)
}

// MinimalCertificate returns an inclusion-minimal box certificate
// (Definition 3.4): a subset of the boxes with the same union from which
// no box can be dropped.
func MinimalCertificate(depths []uint8, boxes []Box) ([]Box, error) {
	return cert.Minimal(depths, boxes)
}

// VerifyCertificate reports whether subset is a box certificate for
// boxes: a subset with an identical union.
func VerifyCertificate(depths []uint8, boxes, subset []Box) (bool, error) {
	return cert.Verify(depths, boxes, subset)
}

// AGMBound returns the per-instance AGM output-size bound of the query
// (Definition A.1): the minimum of Π|R_F|^{x_F} over fractional edge
// covers x.
func AGMBound(q *Query) (float64, error) {
	h := q.Hypergraph()
	sizes := make([]int, len(q.Atoms()))
	for i, a := range q.Atoms() {
		sizes[i] = a.Relation.Len()
	}
	return agm.Bound(h, sizes)
}

// FractionalEdgeCoverNumber returns ρ*(Q) (Definition A.2).
func FractionalEdgeCoverNumber(q *Query) (float64, error) {
	return agm.Rho(q.Hypergraph())
}

// FHTW returns the fractional hypertree width of the query; exact is
// false when the value is a heuristic upper bound (queries with more than
// 8 variables).
func FHTW(q *Query) (width float64, exact bool, err error) {
	return agm.FHTW(q.Hypergraph())
}

// Treewidth returns the treewidth of the query's hypergraph.
func Treewidth(q *Query) (int, error) {
	w, _, err := q.Hypergraph().Treewidth()
	return w, err
}

// IsAcyclic reports whether the query is α-acyclic (GYO reducible).
func IsAcyclic(q *Query) bool { return q.Hypergraph().AlphaAcyclic() }

// Explanation describes a query's evaluation plan and the structural
// measures that determine which runtime guarantees apply; see
// join.Explanation.
type Explanation = join.Explanation

// Explain computes the evaluation plan (SAO, indices, widths, AGM bound,
// applicable guarantee) for the query without running it.
func Explain(q *Query, opts Options) (*Explanation, error) { return join.Explain(q, opts) }
