package tetrisjoin

import (
	"io"
	"math/big"

	"tetrisjoin/internal/sat"
)

// CNF is a propositional formula in conjunctive normal form; see sat.CNF.
// Through the paper's DPLL correspondence (Section 4.2.4, Appendix I),
// clauses become boxes over the Boolean cube and Tetris acts as a #SAT
// procedure with clause learning.
type CNF = sat.CNF

// Clause is a disjunction of literals (±variable, 1-based).
type Clause = sat.Clause

// SATOptions configures the SAT procedures; see sat.Options.
type SATOptions = sat.Options

// SATResult reports a SAT run; see sat.Result.
type SATResult = sat.Result

// CountModels counts the models of the formula (#SAT) via Tetris,
// enumerating each model.
func CountModels(c CNF, opts SATOptions) (*SATResult, error) { return sat.Count(c, opts) }

// CountModelsFast returns the exact model count without enumeration: the
// memoized counting skeleton sums whole satisfying sub-cubes, handling
// formulas with astronomically many models.
func CountModelsFast(c CNF, opts SATOptions) (*big.Int, error) {
	count, _, err := sat.CountFast(c, opts)
	return count, err
}

// SolveSAT finds one model of the formula, or reports unsatisfiability.
func SolveSAT(c CNF, opts SATOptions) (satisfiable bool, model []bool, err error) {
	return sat.Solve(c, opts)
}

// ParseDIMACS reads a DIMACS CNF formula.
func ParseDIMACS(r io.Reader) (CNF, error) { return sat.ParseDIMACS(r) }

// Pigeonhole returns the pigeonhole principle formula PHP(pigeons, holes).
func Pigeonhole(pigeons, holes int) CNF { return sat.Pigeonhole(pigeons, holes) }
