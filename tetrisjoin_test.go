package tetrisjoin_test

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"tetrisjoin"
)

func sortTuples(ts [][]uint64) {
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
}

func TestPublicAPIQuickstart(t *testing.T) {
	r, err := tetrisjoin.NewRelation("R", []string{"src", "dst"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	r.MustInsert(1, 2)
	r.MustInsert(2, 3)
	r.MustInsert(1, 3)
	q, err := tetrisjoin.ParseQuery("R(A,B), R(B,C), R(A,C)",
		map[string]*tetrisjoin.Relation{"R": r})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tetrisjoin.Join(q, tetrisjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]uint64{{1, 2, 3}}
	if !reflect.DeepEqual(res.Tuples, want) {
		t.Errorf("Tuples = %v, want %v", res.Tuples, want)
	}
}

func TestPublicAPIAllModes(t *testing.T) {
	r, _ := tetrisjoin.NewRelation("R", []string{"x", "y"}, 4)
	for i := uint64(0); i < 8; i++ {
		r.MustInsert(i, (i+1)%8)
	}
	q, err := tetrisjoin.ParseQuery("R(A,B), R(B,C)", map[string]*tetrisjoin.Relation{"R": r})
	if err != nil {
		t.Fatal(err)
	}
	var ref [][]uint64
	for i, mode := range []tetrisjoin.Mode{
		tetrisjoin.Reloaded, tetrisjoin.Preloaded,
		tetrisjoin.PreloadedLB, tetrisjoin.ReloadedLB,
	} {
		res, err := tetrisjoin.Join(q, tetrisjoin.Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		got := res.Tuples
		sortTuples(got)
		if i == 0 {
			ref = got
			if len(ref) != 8 {
				t.Fatalf("path query over a cycle should give 8 tuples, got %d", len(ref))
			}
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%v disagrees with Reloaded", mode)
		}
	}
}

func TestPublicAPIIndices(t *testing.T) {
	s, _ := tetrisjoin.NewRelation("S", []string{"x", "y"}, 4)
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			s.MustInsert(a, b)
		}
	}
	bt, err := tetrisjoin.BTreeIndex(s, "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	dy := tetrisjoin.DyadicIndex(s)
	kd := tetrisjoin.KDTreeIndex(s)
	u, err := tetrisjoin.UnionIndex(bt, dy, kd)
	if err != nil {
		t.Fatal(err)
	}
	q, err := tetrisjoin.NewQuery(tetrisjoin.Atom{
		Relation: s, Vars: []string{"A", "B"},
		Indexes: []tetrisjoin.Index{u},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tetrisjoin.Join(q, tetrisjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 64 {
		t.Errorf("got %d tuples, want 64", len(res.Tuples))
	}
}

func TestPublicAPIBCP(t *testing.T) {
	depths := []uint8{2, 2}
	var boxes []tetrisjoin.Box
	for _, s := range []string{"λ,0", "00,λ", "λ,11", "10,1"} {
		b, err := tetrisjoin.ParseBox(s)
		if err != nil {
			t.Fatal(err)
		}
		boxes = append(boxes, b)
	}
	res, err := tetrisjoin.SolveBCP(depths, boxes, tetrisjoin.BCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 2 {
		t.Errorf("BCP output = %v", res.Tuples)
	}
	covered, pt, err := tetrisjoin.CoversSpace(depths, boxes)
	if err != nil {
		t.Fatal(err)
	}
	if covered || pt == nil {
		t.Error("space with holes reported covered")
	}
	minc, err := tetrisjoin.MinimalCertificate(depths, boxes)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := tetrisjoin.VerifyCertificate(depths, boxes, minc)
	if err != nil || !ok {
		t.Error("minimal certificate does not verify")
	}
}

func TestPublicAPIAnalysis(t *testing.T) {
	r, _ := tetrisjoin.NewRelation("R", []string{"x", "y"}, 4)
	for i := uint64(0); i < 10; i++ {
		r.MustInsert(i%8, (i*3)%8)
	}
	cat := map[string]*tetrisjoin.Relation{"R": r}
	tri, _ := tetrisjoin.ParseQuery("R(A,B), R(B,C), R(A,C)", cat)
	path, _ := tetrisjoin.ParseQuery("R(A,B), R(B,C)", cat)

	if tetrisjoin.IsAcyclic(tri) {
		t.Error("triangle reported acyclic")
	}
	if !tetrisjoin.IsAcyclic(path) {
		t.Error("path reported cyclic")
	}
	if tw, err := tetrisjoin.Treewidth(tri); err != nil || tw != 2 {
		t.Errorf("treewidth(triangle) = %d, %v", tw, err)
	}
	rho, err := tetrisjoin.FractionalEdgeCoverNumber(tri)
	if err != nil || math.Abs(rho-1.5) > 1e-9 {
		t.Errorf("ρ*(triangle) = %g, %v", rho, err)
	}
	b, err := tetrisjoin.AGMBound(tri)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(r.Len())
	if math.Abs(b-math.Pow(n, 1.5)) > 1e-6*b {
		t.Errorf("AGM = %g, want %g", b, math.Pow(n, 1.5))
	}
	w, exact, err := tetrisjoin.FHTW(tri)
	if err != nil || !exact || math.Abs(w-1.5) > 1e-9 {
		t.Errorf("fhtw(triangle) = %g (exact %v), %v", w, exact, err)
	}
}

func TestPublicAPIEncoder(t *testing.T) {
	e := tetrisjoin.NewEncoder()
	for _, name := range []string{"carol", "alice", "bob"} {
		e.Add(name)
	}
	d := e.Freeze()
	r, err := tetrisjoin.NewRelation("Friends", []string{"a", "b"}, d)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := e.Code("alice")
	b, _ := e.Code("bob")
	r.MustInsert(a, b)
	q, _ := tetrisjoin.ParseQuery("Friends(X,Y)", map[string]*tetrisjoin.Relation{"Friends": r})
	res, err := tetrisjoin.Join(q, tetrisjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatal("expected one tuple")
	}
	back, _ := e.Value(res.Tuples[0][0])
	if back != "alice" {
		t.Errorf("decoded %q", back)
	}
}

func ExampleJoin() {
	r, _ := tetrisjoin.NewRelation("E", []string{"u", "v"}, 8)
	r.MustInsert(1, 2)
	r.MustInsert(2, 3)
	r.MustInsert(3, 1)
	q, _ := tetrisjoin.ParseQuery("E(A,B), E(B,C), E(C,A)",
		map[string]*tetrisjoin.Relation{"E": r})
	res, _ := tetrisjoin.Join(q, tetrisjoin.Options{})
	for _, t := range res.Tuples {
		fmt.Println(t)
	}
	// Unordered output:
	// [1 2 3]
	// [2 3 1]
	// [3 1 2]
}
